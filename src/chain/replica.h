// A chain replica: local persistent KV store + chain protocol state machine
// (paper §5).
//
// Roles:
//   - Head: runs a full Kamino-Tx engine (full or dynamic backup) for
//     Kamino-Tx-Chain, or undo-logging for the traditional chain. Executes
//     client writes locally, admits only committed transactions downstream,
//     and holds chain-level key locks until the tail acknowledges.
//   - Middle/tail (Kamino chain): the kChainReplica engine — in-place
//     updates, intent log, NO local backup; the neighbours are the copies.
//   - Middle/tail (traditional): undo-logging, i.e. a data copy in the
//     critical path at every replica — the overhead Table 1 charges as l_c.
//
// Determinism: replicas execute operations strictly in op_id order on
// identical initial heaps, so persistent object offsets are identical across
// the chain. That is what lets a rebooted replica repair the write set of an
// incomplete transaction by fetching those byte ranges from a neighbour
// (roll forward from the predecessor; roll back from the successor when
// promoted to head) — paper §5.3 and Figure 9.
//
// Lossy-network hardening (DESIGN.md §9): every received message passes a
// per-sender dedup window on (src, view_id, seq) that discards network-level
// duplicates; op forwards that arrive ahead of the apply watermark are
// buffered and applied in op_id order; every replica retransmits its
// in-flight ops downstream with exponential backoff until the tail's
// cleanup acknowledgment erases them, and duplicate forwards regenerate the
// acks/cleanups the sender is evidently missing. An optional heartbeat
// failure detector reports silent neighbours to the MembershipManager,
// which drives the view change (Chain runs the repair).

#ifndef SRC_CHAIN_REPLICA_H_
#define SRC_CHAIN_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

#include "src/chain/anchor.h"
#include "src/chain/membership.h"
#include "src/chain/wire.h"
#include "src/net/network.h"
#include "src/pds/bplus_tree.h"
#include "src/txn/kamino_engine.h"
#include "src/txn/tx_manager.h"

namespace kamino::chain {

struct ReplicaOptions {
  uint64_t node_id = 0;
  bool kamino = true;        // Kamino-Tx-Chain vs traditional chain.
  double head_alpha = 1.0;   // Head backup budget (1.0 = full backup).
  uint64_t pool_size = 64ull << 20;
  uint64_t log_region_size = 8ull << 20;
  uint32_t flush_latency_ns = 0;  // Emulated NVM write-back cost per line.
  uint64_t client_timeout_ms = 10'000;
  // Retransmission of in-flight ops to the successor: first retry after
  // `retx_base_ms` without a cleanup ack, then doubling up to `retx_cap_ms`.
  // The base is far above the healthy end-to-end commit time, so a loss-free
  // chain never retransmits.
  uint32_t retx_base_ms = 50;
  uint32_t retx_cap_ms = 800;
  // Heartbeat failure detector. 0 disables it (failures are then only
  // injected/fenced by the orchestrator, the pre-detector behaviour).
  uint32_t heartbeat_interval_ms = 0;
  // A neighbour silent for this long is reported to the MembershipManager.
  uint32_t suspicion_timeout_ms = 500;
  net::Network* network = nullptr;
  MembershipManager* membership = nullptr;
};

// Chain-protocol counters (all volatile, monotonic since construction).
struct ReplicaProtocolStats {
  uint64_t retransmits = 0;       // In-flight ops re-forwarded downstream.
  uint64_t state_req_retransmits = 0;  // kStateReq retries during JoinAsTail.
  uint64_t dedup_dropped = 0;     // Messages discarded by the seq window.
  uint64_t regen_acks = 0;        // Acks/cleanups regenerated for duplicates.
  uint64_t reorder_buffered = 0;  // Op forwards buffered for in-order apply.
  uint64_t req_dedup_hits = 0;    // Client retries answered from the req table.
  uint64_t heartbeats_sent = 0;
  uint64_t suspicions_reported = 0;
};

class Replica {
 public:
  explicit Replica(const ReplicaOptions& options);
  ~Replica();

  // Builds pools, heap, engine (per current role) and an empty store.
  Status Init();
  void Start();
  void Stop();

  // --- Head-side client API (Chain calls these on the head replica) --------

  // Two-phase write so the orchestrator's admission gate can be released
  // before the (long) wait for the tail's acknowledgment.
  struct WriteTicket {
    bool admitted = false;
    uint64_t op_id = 0;
    std::vector<uint64_t> keys;
    Status status;  // Admission outcome.
  };
  // Takes the chain key locks, executes locally, forwards downstream. If
  // op.req_id is a request this replica has already applied (a client
  // retry), no re-execution happens: the ticket carries the original op_id
  // and WaitWrite waits for (or immediately observes) its acknowledgment —
  // exactly-once semantics across retries and head changes.
  WriteTicket AdmitWrite(const Op& op);
  // Waits for the tail ack and releases the key locks.
  Status WaitWrite(WriteTicket& ticket);
  // Same with an explicit wait bound (client retry loops use short bounds).
  Status WaitWriteFor(WriteTicket& ticket, uint64_t timeout_ms);
  // Convenience: AdmitWrite + WaitWrite.
  Status ClientWrite(const Op& op);

  // `timeout_ms` = 0 uses the configured client timeout.
  Result<std::string> ClientRead(uint64_t key, uint64_t timeout_ms = 0);

  // Stale-bounded read served directly from this replica's local store at
  // its applied op watermark — no head round-trip, no tail hop, no message
  // loop involvement, so read throughput scales with chain length
  // (DESIGN.md §12). The returned state reflects exactly the ops this
  // replica has applied: at most the chain propagation lag behind the head,
  // and possibly ahead of the tail-commit point by ops still in flight
  // downstream (admitted ops survive up to f failures — the chain's
  // durability contract — so this is read-admitted, not read-committed).
  // Linearizable reads stay on ClientRead. *applied_out receives the applied
  // watermark — the replica's epoch in the chain read model.
  Result<std::string> StaleRead(uint64_t key, uint64_t* applied_out = nullptr);

  // --- Failure injection / recovery (driven by Chain) ----------------------

  // Fail-stop: thread killed, endpoint down, volatile state lost.
  void CrashStop();
  // Arms a fault: the next applied operation executes its writes, persists
  // them partially, and then the replica "loses power" mid-transaction.
  void ArmCrashDuringNextApply();
  // Quick reboot (paper §5.3): crash-sim the pools, reattach, resolve
  // incomplete transactions via the appropriate neighbour, replay, resume.
  Status QuickReboot();
  // Head-failure promotion (paper §5.2): roll back any incomplete
  // transaction from the successor, build a local backup, take over.
  Status PromoteToHead();
  // Fresh node joining as tail: full state transfer from the predecessor.
  // Crash-atomic: the transferred image only becomes attachable when the
  // heap superblock page is installed last (`chain/join-commit`); a power
  // failure at any earlier point leaves an unattachable pool that
  // RejoinAsTail simply re-transfers (DESIGN.md §13).
  Status JoinAsTail();
  // Power-cycle + retry of a join that crashed mid state transfer: drops
  // volatile state, crash-sims the pool, and re-runs JoinAsTail from scratch.
  Status RejoinAsTail();

  void UpdateView(const View& view);

  // Asks `from_node` to resend everything in its in-flight queue (chain
  // repair after a middle-replica failure, and reboot catch-up).
  Status RequestReplay(uint64_t from_node);

  // --- Introspection --------------------------------------------------------

  uint64_t node_id() const { return options_.node_id; }
  uint64_t last_applied() const;
  bool is_head() const;
  bool alive() const { return running_.load(std::memory_order_relaxed); }
  uint64_t nvm_bytes() const;
  txn::TxManager* manager() { return mgr_.get(); }
  pds::BPlusTree* tree() { return tree_.get(); }
  // Test hooks: the replica's persistent pools, for installing persistence
  // observers (crash-point enumeration). Null before Init().
  nvm::Pool* pool() { return pool_.get(); }
  nvm::Pool* backup_pool() { return backup_pool_.get(); }
  heap::Heap* heap() { return heap_.get(); }
  // Materialize the pools ahead of Init()/JoinAsTail()/PromoteToHead() so a
  // crash-point observer can watch every persist of a view change, including
  // the ones that would otherwise create the pool mid-change. Idempotent.
  Status EnsureMainPool();
  Status EnsureBackupPool(bool force_full = false);
  // The durable promotion cursor (anchor.h). Reads the persistent field, so
  // after Pool::Crash() it reports exactly what a power failure preserved.
  uint64_t view_cursor() const;
  // Ops forwarded but not yet cleaned up.
  size_t in_flight_size() const;
  ReplicaProtocolStats protocol_stats() const;

 private:
  // The persistent anchor at the heap root is ChainAnchor (anchor.h): magic,
  // the durable promotion cursor, the tree anchor, and the applied-op marker
  // ring.

  // Dedup window per sender: seqs within kSeqWindow of the max seen are
  // tracked exactly; anything older than the window is assumed duplicate.
  static constexpr uint64_t kSeqWindow = 8192;
  struct PeerWindow {
    uint64_t max_seq = 0;
    std::set<std::pair<uint64_t, uint64_t>> seen;  // (seq, view_id)
  };

  // In-flight op: buffered for downstream replay + retransmission until the
  // cleanup ack covers it.
  struct InFlight {
    Op op;
    std::chrono::steady_clock::time_point next_retx;
    uint32_t backoff_ms = 0;
  };

  static constexpr size_t kReqTableCap = 1 << 16;

  Status BuildStore(bool attach, bool run_recovery);
  txn::TxManagerOptions MgrOptions(bool head_role) const;

  // Persists the promotion cursor (one 8-byte persist at the dedicated site
  // `chain/promote-cursor` — the reconcile_cursor pattern).
  void StampViewCursor(uint64_t value);
  // The resumable tail of a head takeover: resolve leftover log slots,
  // rebuild the manager in the head role, (Kamino) build + sync the local
  // backup, stamp the cursor complete, reattach the tree. Idempotent — a
  // crash at any persist inside re-runs it wholesale on reboot.
  Status CompletePromotion(const View& v);
  // Kills any attached heap image so a crash mid state transfer can never
  // leave a stale-but-attachable superblock (join commit protocol).
  void InvalidateHeapImage();

  uint64_t anchor_off() const { return heap_->root(); }
  uint64_t MarkerOffset(uint64_t op_id) const {
    return anchor_off() + offsetof(ChainAnchor, ring) + (op_id % kMarkerRing) * sizeof(uint64_t);
  }
  uint64_t RingMax() const;

  void Loop();
  void HandleMessage(net::Message&& msg);
  // Heartbeats, suspicion checks, retransmissions. Loop thread only.
  void TimerPass(std::chrono::steady_clock::time_point now);
  void NoteHeard(uint64_t src);
  bool IsDuplicateMessage(const net::Message& msg);  // Loop thread only.

  // Applies `op` in one local transaction (idempotent via the marker).
  Status ApplyOp(uint64_t op_id, const Op& op);
  Status RunOpTransaction(uint64_t op_id, const Op& op);
  // ApplyOp + in-flight insert + downstream forward; false if apply failed.
  bool ApplyAndForward(uint64_t op_id, const Op& op);
  void ForwardDownstream(uint64_t op_id, const Op& op);
  void SendForward(uint64_t dst, uint64_t view_id, uint64_t op_id, const Op& op);
  void OnTailCommit(uint64_t op_id);
  void InsertInFlight(uint64_t op_id, const Op& op);

  // Request-dedup table (volatile, bounded, maintained on every replica so
  // a newly promoted head inherits it for the ops it has applied).
  void RecordRequest(uint64_t req_id, uint64_t op_id);
  std::optional<uint64_t> LookupRequest(uint64_t req_id);

  void HandleOpForward(const net::Message& msg);
  void HandleReadReq(const net::Message& msg);
  void HandleFetchObjects(const net::Message& msg);
  void HandleReplayReq(const net::Message& msg);
  void HandleCleanupAck(const net::Message& msg);
  void NoteCommitted(uint64_t op_id);  // Raises last_acked_, wakes waiters.

  // Reboot helpers: resolve incomplete transactions against a neighbour.
  Status ResolveIncompleteFromNeighbour(uint64_t neighbour, bool roll_forward);
  // Releases committed-but-unreleased slots locally (deferred frees + slot
  // release). Committed transactions never need neighbour traffic — the
  // in-place data is final — so a committed-only log must not gate a
  // promotion on a live successor.
  Status ResolveCommittedLocally(const std::vector<txn::RecoveredTx>& txs);
  Result<std::vector<std::pair<uint64_t, std::string>>> FetchRanges(
      uint64_t neighbour, const std::vector<txn::Intent>& intents);

  // Chain-level key locks (head only): held from admission until tail ack.
  void LockKeys(const std::vector<uint64_t>& keys);
  void UnlockKeys(const std::vector<uint64_t>& keys);

  ReplicaOptions options_;
  net::Endpoint* endpoint_ = nullptr;

  // Persistent state (crash-sim pools survive simulated reboots).
  std::unique_ptr<nvm::Pool> pool_;
  std::unique_ptr<nvm::Pool> backup_pool_;  // Head only.
  std::unique_ptr<heap::Heap> heap_;
  std::unique_ptr<txn::TxManager> mgr_;
  std::unique_ptr<pds::BPlusTree> tree_;

  // View / role.
  mutable std::mutex view_mu_;
  View view_;

  // Message loop. stop_mu_ serializes Stop() callers: the failure detector's
  // repair worker, test injectors, and the destructor can race to fence the
  // same replica.
  std::mutex stop_mu_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Head execution (serialized for offset determinism).
  std::mutex exec_mu_;
  uint64_t next_op_id_ = 1;

  // Completion watermark. Raised by tail acks and by cleanup acks (cleanup
  // originates at the tail commit, so it carries the same information — the
  // head must not depend on the direct tail->head ack alone surviving a
  // lossy network).
  std::mutex comp_mu_;
  std::condition_variable comp_cv_;
  uint64_t last_acked_ = 0;

  // Pending reads (req_id -> reply slot).
  struct PendingRead {
    bool done = false;
    bool found = false;
    std::string value;
  };
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  std::map<uint64_t, PendingRead> reads_;
  uint64_t next_read_id_ = 1;

  // In-flight ops: forwarded (or admitted, at the head) but not cleaned up.
  mutable std::mutex inflight_mu_;
  std::map<uint64_t, InFlight> in_flight_;
  // Everything <= this op id has been committed by the tail and cleaned up.
  std::atomic<uint64_t> cleaned_below_{0};

  // Op forwards that arrived ahead of the watermark (reordered network):
  // buffered until the gap fills, applied strictly in op_id order.
  // Loop thread only.
  std::map<uint64_t, Op> pending_ops_;

  // Per-sender dedup windows. Loop thread only.
  std::map<uint64_t, PeerWindow> peer_windows_;

  // Heartbeat / failure-detector state.
  std::mutex hb_mu_;
  std::map<uint64_t, std::chrono::steady_clock::time_point> last_heard_;
  std::set<std::pair<uint64_t, uint64_t>> reported_;  // (view_id, suspect)
  std::chrono::steady_clock::time_point next_heartbeat_{};

  // Request-dedup table.
  std::mutex req_mu_;
  std::unordered_map<uint64_t, uint64_t> req_to_op_;
  std::deque<uint64_t> req_fifo_;

  // Chain-level key locks (head).
  std::mutex keylock_mu_;
  std::condition_variable keylock_cv_;
  std::map<uint64_t, bool> locked_keys_;

  // Volatile applied watermark (rebuilt from the marker ring on reboot).
  std::atomic<uint64_t> applied_watermark_{0};

  // Keys of in-flight ops adopted during head promotion, unlocked when the
  // tail's (re-)acks arrive.
  std::map<uint64_t, std::vector<uint64_t>> orphan_ops_;

  // Protocol counters (see ReplicaProtocolStats).
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> state_req_retransmits_{0};
  std::atomic<uint64_t> dedup_dropped_{0};
  std::atomic<uint64_t> regen_acks_{0};
  std::atomic<uint64_t> reorder_buffered_{0};
  std::atomic<uint64_t> req_dedup_hits_{0};
  std::atomic<uint64_t> heartbeats_sent_{0};
  std::atomic<uint64_t> suspicions_reported_{0};

  // Fault injection.
  std::atomic<bool> crash_next_apply_{false};
  std::atomic<bool> crashed_mid_apply_{false};
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_REPLICA_H_
