// A chain replica: local persistent KV store + chain protocol state machine
// (paper §5).
//
// Roles:
//   - Head: runs a full Kamino-Tx engine (full or dynamic backup) for
//     Kamino-Tx-Chain, or undo-logging for the traditional chain. Executes
//     client writes locally, admits only committed transactions downstream,
//     and holds chain-level key locks until the tail acknowledges.
//   - Middle/tail (Kamino chain): the kChainReplica engine — in-place
//     updates, intent log, NO local backup; the neighbours are the copies.
//   - Middle/tail (traditional): undo-logging, i.e. a data copy in the
//     critical path at every replica — the overhead Table 1 charges as l_c.
//
// Determinism: replicas execute operations strictly in op_id order on
// identical initial heaps, so persistent object offsets are identical across
// the chain. That is what lets a rebooted replica repair the write set of an
// incomplete transaction by fetching those byte ranges from a neighbour
// (roll forward from the predecessor; roll back from the successor when
// promoted to head) — paper §5.3 and Figure 9.

#ifndef SRC_CHAIN_REPLICA_H_
#define SRC_CHAIN_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/chain/membership.h"
#include "src/chain/wire.h"
#include "src/net/network.h"
#include "src/pds/bplus_tree.h"
#include "src/txn/kamino_engine.h"
#include "src/txn/tx_manager.h"

namespace kamino::chain {

struct ReplicaOptions {
  uint64_t node_id = 0;
  bool kamino = true;        // Kamino-Tx-Chain vs traditional chain.
  double head_alpha = 1.0;   // Head backup budget (1.0 = full backup).
  uint64_t pool_size = 64ull << 20;
  uint64_t log_region_size = 8ull << 20;
  uint32_t flush_latency_ns = 0;  // Emulated NVM write-back cost per line.
  uint64_t client_timeout_ms = 10'000;
  net::Network* network = nullptr;
  MembershipManager* membership = nullptr;
};

class Replica {
 public:
  explicit Replica(const ReplicaOptions& options);
  ~Replica();

  // Builds pools, heap, engine (per current role) and an empty store.
  Status Init();
  void Start();
  void Stop();

  // --- Head-side client API (Chain calls these on the head replica) --------

  // Two-phase write so the orchestrator's admission gate can be released
  // before the (long) wait for the tail's acknowledgment.
  struct WriteTicket {
    bool admitted = false;
    uint64_t op_id = 0;
    std::vector<uint64_t> keys;
    Status status;  // Admission outcome.
  };
  // Takes the chain key locks, executes locally, forwards downstream.
  WriteTicket AdmitWrite(const Op& op);
  // Waits for the tail ack and releases the key locks.
  Status WaitWrite(WriteTicket& ticket);
  // Convenience: AdmitWrite + WaitWrite.
  Status ClientWrite(const Op& op);

  Result<std::string> ClientRead(uint64_t key);

  // --- Failure injection / recovery (driven by Chain) ----------------------

  // Fail-stop: thread killed, endpoint down, volatile state lost.
  void CrashStop();
  // Arms a fault: the next applied operation executes its writes, persists
  // them partially, and then the replica "loses power" mid-transaction.
  void ArmCrashDuringNextApply();
  // Quick reboot (paper §5.3): crash-sim the pools, reattach, resolve
  // incomplete transactions via the appropriate neighbour, replay, resume.
  Status QuickReboot();
  // Head-failure promotion (paper §5.2): roll back any incomplete
  // transaction from the successor, build a local backup, take over.
  Status PromoteToHead();
  // Fresh node joining as tail: full state transfer from the predecessor.
  Status JoinAsTail();

  void UpdateView(const View& view);

  // Asks `from_node` to resend everything in its in-flight queue (chain
  // repair after a middle-replica failure, and reboot catch-up).
  Status RequestReplay(uint64_t from_node);

  // --- Introspection --------------------------------------------------------

  uint64_t node_id() const { return options_.node_id; }
  uint64_t last_applied() const;
  bool is_head() const;
  bool alive() const { return running_.load(std::memory_order_relaxed); }
  uint64_t nvm_bytes() const;
  txn::TxManager* manager() { return mgr_.get(); }
  pds::BPlusTree* tree() { return tree_.get(); }
  // Test hooks: the replica's persistent pools, for installing persistence
  // observers (crash-point enumeration). Null before Init().
  nvm::Pool* pool() { return pool_.get(); }
  nvm::Pool* backup_pool() { return backup_pool_.get(); }
  // Ops forwarded but not yet cleaned up.
  size_t in_flight_size() const;

 private:
  // Persistent anchor at the heap root: the tree anchor plus a ring of
  // applied-op markers. Each operation's transaction writes its op id into
  // ring[op_id % kMarkerRing]; recovery takes the ring maximum as the last
  // applied id. A ring (rather than one counter) keeps successive operations
  // from becoming dependent transactions on the marker object — slot reuse
  // is kMarkerRing operations apart.
  static constexpr uint64_t kMarkerRing = 1024;
  struct ChainAnchor {
    uint64_t tree_anchor;
    uint64_t ring[kMarkerRing];
  };

  Status BuildStore(bool attach, bool run_recovery);
  txn::TxManagerOptions MgrOptions(bool head_role) const;

  uint64_t anchor_off() const { return heap_->root(); }
  uint64_t MarkerOffset(uint64_t op_id) const {
    return anchor_off() + offsetof(ChainAnchor, ring) + (op_id % kMarkerRing) * sizeof(uint64_t);
  }
  uint64_t RingMax() const;

  void Loop();
  void HandleMessage(net::Message&& msg);

  // Applies `op` in one local transaction (idempotent via the marker).
  Status ApplyOp(uint64_t op_id, const Op& op);
  Status RunOpTransaction(uint64_t op_id, const Op& op);
  void ForwardDownstream(uint64_t op_id, const Op& op);
  void OnTailCommit(uint64_t op_id);

  void HandleOpForward(const net::Message& msg);
  void HandleReadReq(const net::Message& msg);
  void HandleFetchObjects(const net::Message& msg);
  void HandleReplayReq(const net::Message& msg);
  void HandleCleanupAck(const net::Message& msg);

  // Reboot helpers: resolve incomplete transactions against a neighbour.
  Status ResolveIncompleteFromNeighbour(uint64_t neighbour, bool roll_forward);
  Result<std::vector<std::pair<uint64_t, std::string>>> FetchRanges(
      uint64_t neighbour, const std::vector<txn::Intent>& intents);

  // Chain-level key locks (head only): held from admission until tail ack.
  void LockKeys(const std::vector<uint64_t>& keys);
  void UnlockKeys(const std::vector<uint64_t>& keys);

  ReplicaOptions options_;
  net::Endpoint* endpoint_ = nullptr;

  // Persistent state (crash-sim pools survive simulated reboots).
  std::unique_ptr<nvm::Pool> pool_;
  std::unique_ptr<nvm::Pool> backup_pool_;  // Head only.
  std::unique_ptr<heap::Heap> heap_;
  std::unique_ptr<txn::TxManager> mgr_;
  std::unique_ptr<pds::BPlusTree> tree_;

  // View / role.
  mutable std::mutex view_mu_;
  View view_;

  // Message loop.
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Head execution (serialized for offset determinism).
  std::mutex exec_mu_;
  uint64_t next_op_id_ = 1;

  // Completion watermark (tail acks arrive in order).
  std::mutex comp_mu_;
  std::condition_variable comp_cv_;
  uint64_t last_acked_ = 0;

  // Pending reads (req_id -> reply slot).
  struct PendingRead {
    bool done = false;
    bool found = false;
    std::string value;
  };
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  std::map<uint64_t, PendingRead> reads_;
  uint64_t next_read_id_ = 1;

  // In-flight ops: forwarded (or admitted, at the head) but not cleaned up.
  mutable std::mutex inflight_mu_;
  std::map<uint64_t, Op> in_flight_;

  // Chain-level key locks (head).
  std::mutex keylock_mu_;
  std::condition_variable keylock_cv_;
  std::map<uint64_t, bool> locked_keys_;

  // Volatile applied watermark (rebuilt from the marker ring on reboot).
  std::atomic<uint64_t> applied_watermark_{0};

  // Keys of in-flight ops adopted during head promotion, unlocked when the
  // tail's (re-)acks arrive.
  std::map<uint64_t, std::vector<uint64_t>> orphan_ops_;

  // Fault injection.
  std::atomic<bool> crash_next_apply_{false};
  std::atomic<bool> crashed_mid_apply_{false};
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_REPLICA_H_
