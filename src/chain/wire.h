// Wire format for chain-replication messages.
//
// Replicas exchange operations "in the form of a remote procedure call with
// a named function and the arguments to the function" (paper §5.1); here the
// named functions are the KV store's transactional operations. A small
// explicit binary codec keeps marshaling cost on the measured path, as it
// would be on a real wire.

#ifndef SRC_CHAIN_WIRE_H_
#define SRC_CHAIN_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace kamino::chain {

// Message opcodes (net::Message::type).
enum MsgType : uint64_t {
  kOpForward = 1,    // Downstream: op_id + operation.
  kOpAck = 2,        // Tail -> head: op_id committed chain-wide.
  kCleanupAck = 3,   // Upstream: op_id may leave in-flight queues.
  kReadReq = 4,      // Head -> tail: req_id + key.
  kReadReply = 5,    // Tail -> head: req_id + found + value.
  kFetchObjects = 6, // Reboot recovery: intent list (offsets/sizes/kinds).
  kFetchReply = 7,   // Neighbour's bytes for those ranges.
  kReplayReq = 8,    // Rebooted replica asks predecessor for ops > from_id.
  kQueryTail = 9,    // New head asks tail for its progress.
  kTailInfo = 10,    // Tail's last applied op id.
  kStateReq = 11,    // New tail asks predecessor for a full state transfer.
  kStateChunk = 12,  // Bulk heap bytes.
  kHeartbeat = 13,   // Liveness beacon to chain neighbours (payload: applied watermark).
};

enum class OpKind : uint32_t {
  kUpsert = 1,
  kDelete = 2,
  kMultiUpsert = 3,  // Several pairs in one atomic transaction.
};

struct KvPair {
  uint64_t key = 0;
  std::string value;
};

struct Op {
  OpKind kind = OpKind::kUpsert;
  // Client-assigned request id (0 = none). Travels with the op to every
  // replica so any head — including one promoted mid-request — can detect a
  // retried request and return the original outcome instead of executing it
  // a second time (exactly-once client retries).
  uint64_t req_id = 0;
  std::vector<KvPair> pairs;  // kDelete uses pairs[0].key only.
};

// --- Codec ---------------------------------------------------------------

class Writer {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* p, size_t n) {
    U32(static_cast<uint32_t>(n));
    Raw(p, n);
  }
  void Str(const std::string& s) { Bytes(s.data(), s.size()); }

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  // Owns a copy of the buffer so temporaries (e.g. Reader(w.Take())) are
  // safe; message payloads are small enough that the copy is irrelevant.
  explicit Reader(std::vector<uint8_t> buf) : buf_(std::move(buf)) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > buf_.size()) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  bool Raw(void* p, size_t n) {
    if (pos_ + n > buf_.size()) {
      return false;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

// --- Op serialization -----------------------------------------------------

inline void EncodeOp(const Op& op, Writer* w) {
  w->U32(static_cast<uint32_t>(op.kind));
  w->U64(op.req_id);
  w->U32(static_cast<uint32_t>(op.pairs.size()));
  for (const KvPair& p : op.pairs) {
    w->U64(p.key);
    w->Str(p.value);
  }
}

inline bool DecodeOp(Reader* r, Op* op) {
  uint32_t kind = 0, n = 0;
  if (!r->U32(&kind) || !r->U64(&op->req_id) || !r->U32(&n)) {
    return false;
  }
  op->kind = static_cast<OpKind>(kind);
  op->pairs.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r->U64(&op->pairs[i].key) || !r->Str(&op->pairs[i].value)) {
      return false;
    }
  }
  return true;
}

}  // namespace kamino::chain

#endif  // SRC_CHAIN_WIRE_H_
