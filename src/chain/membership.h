// Membership / view management (the paper's ZooKeeper stand-in, §5.3).
//
// Maintains the chain's ordered replica list under a monotonically
// increasing viewID. Replicas reject messages from older views; a rebooted
// replica must rejoin through here and learn its (possibly new) predecessor
// and successor.

#ifndef SRC_CHAIN_MEMBERSHIP_H_
#define SRC_CHAIN_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/common/status.h"

namespace kamino::chain {

struct View {
  uint64_t view_id = 0;
  std::vector<uint64_t> nodes;  // Head first, tail last.

  bool Contains(uint64_t node) const {
    for (uint64_t n : nodes) {
      if (n == node) {
        return true;
      }
    }
    return false;
  }
  // 0 = none (node is head / tail respectively).
  uint64_t PredecessorOf(uint64_t node) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == node) {
        return i == 0 ? 0 : nodes[i - 1];
      }
    }
    return 0;
  }
  uint64_t SuccessorOf(uint64_t node) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == node) {
        return i + 1 == nodes.size() ? 0 : nodes[i + 1];
      }
    }
    return 0;
  }
  uint64_t head() const { return nodes.empty() ? 0 : nodes.front(); }
  uint64_t tail() const { return nodes.empty() ? 0 : nodes.back(); }
};

class MembershipManager {
 public:
  // Fired when a suspicion report changes the view (detector-driven view
  // change). Called WITHOUT the membership lock held, from the reporting
  // replica's thread — implementations must only enqueue work.
  // `failed_node` is the member that was excised; `old_view` is the view it
  // was excised from. Deliberately NOT fired by ReportFailure/AddTail: those
  // are orchestrator-driven paths whose callers run the repair themselves.
  using ViewChangeListener =
      std::function<void(const View& new_view, uint64_t failed_node, const View& old_view)>;

  explicit MembershipManager(std::vector<uint64_t> initial_chain);

  View current() const;

  void SetViewChangeListener(ViewChangeListener listener);

  // Fail-stop: removes `node`, producing a new view. Removing the head
  // promotes the second replica.
  View ReportFailure(uint64_t node);

  // Failure-detector report (heartbeat silence). Accepted only when the
  // reporter's view is current and both reporter and suspect are members —
  // stale reports (e.g. the partner of an already-excised node re-reporting
  // it, or a fenced node reporting its neighbours) are rejected, so exactly
  // one view change happens per failure. On acceptance the suspect is
  // removed, the view id bumps, and the listener is notified.
  Result<View> ReportSuspicion(uint64_t reporter, uint64_t suspect, uint64_t view_id);

  // A repaired/new replica joins at the tail.
  View AddTail(uint64_t node);

  // Quick-reboot rejoin (paper §5.3): accepted only if the node is still a
  // member; returns the current view either way so the caller can follow the
  // fail-stop path when its slot is gone.
  Result<View> RequestRejoin(uint64_t node, uint64_t believed_view_id);

  // Detector-driven view changes since construction (suspicions accepted).
  uint64_t suspicion_view_changes() const;

 private:
  mutable std::mutex mu_;
  View view_;
  ViewChangeListener listener_;
  uint64_t suspicion_view_changes_ = 0;
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_MEMBERSHIP_H_
