// Membership / view management (the paper's ZooKeeper stand-in, §5.3).
//
// Maintains the chain's ordered replica list under a monotonically
// increasing viewID. Replicas reject messages from older views; a rebooted
// replica must rejoin through here and learn its (possibly new) predecessor
// and successor.

#ifndef SRC_CHAIN_MEMBERSHIP_H_
#define SRC_CHAIN_MEMBERSHIP_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/status.h"

namespace kamino::chain {

struct View {
  uint64_t view_id = 0;
  std::vector<uint64_t> nodes;  // Head first, tail last.

  bool Contains(uint64_t node) const {
    for (uint64_t n : nodes) {
      if (n == node) {
        return true;
      }
    }
    return false;
  }
  // 0 = none (node is head / tail respectively).
  uint64_t PredecessorOf(uint64_t node) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == node) {
        return i == 0 ? 0 : nodes[i - 1];
      }
    }
    return 0;
  }
  uint64_t SuccessorOf(uint64_t node) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == node) {
        return i + 1 == nodes.size() ? 0 : nodes[i + 1];
      }
    }
    return 0;
  }
  uint64_t head() const { return nodes.empty() ? 0 : nodes.front(); }
  uint64_t tail() const { return nodes.empty() ? 0 : nodes.back(); }
};

class MembershipManager {
 public:
  explicit MembershipManager(std::vector<uint64_t> initial_chain);

  View current() const;

  // Fail-stop: removes `node`, producing a new view. Removing the head
  // promotes the second replica.
  View ReportFailure(uint64_t node);

  // A repaired/new replica joins at the tail.
  View AddTail(uint64_t node);

  // Quick-reboot rejoin (paper §5.3): accepted only if the node is still a
  // member; returns the current view either way so the caller can follow the
  // fail-stop path when its slot is gone.
  Result<View> RequestRejoin(uint64_t node, uint64_t believed_view_id);

 private:
  mutable std::mutex mu_;
  View view_;
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_MEMBERSHIP_H_
