#include "src/chain/replica.h"

#include <algorithm>
#include <cstring>

namespace kamino::chain {

namespace {
constexpr uint64_t kReceivePollMs = 5;  // Also the timer-pass granularity.
constexpr uint64_t kRecoveryTimeoutMs = 5'000;
constexpr size_t kMaxRetxPerPass = 32;
// One page comfortably covers heap::Heap's superblock; installing this range
// last makes the state-transfer image attachable only once it is complete.
constexpr uint64_t kSuperblockPage = 4096;
}  // namespace

Replica::Replica(const ReplicaOptions& options) : options_(options) {
  endpoint_ = options_.network->CreateEndpoint(options_.node_id);
  view_ = options_.membership->current();
}

Replica::~Replica() { Stop(); }

bool Replica::is_head() const {
  std::lock_guard<std::mutex> lk(view_mu_);
  return view_.head() == options_.node_id;
}

uint64_t Replica::last_applied() const {
  return applied_watermark_.load(std::memory_order_relaxed);
}

uint64_t Replica::nvm_bytes() const {
  uint64_t bytes = pool_ != nullptr ? pool_->size() : 0;
  if (backup_pool_ != nullptr) {
    bytes += backup_pool_->size();
  }
  return bytes;
}

size_t Replica::in_flight_size() const {
  std::lock_guard<std::mutex> lk(inflight_mu_);
  return in_flight_.size();
}

ReplicaProtocolStats Replica::protocol_stats() const {
  ReplicaProtocolStats s;
  s.retransmits = retransmits_.load(std::memory_order_relaxed);
  s.state_req_retransmits = state_req_retransmits_.load(std::memory_order_relaxed);
  s.dedup_dropped = dedup_dropped_.load(std::memory_order_relaxed);
  s.regen_acks = regen_acks_.load(std::memory_order_relaxed);
  s.reorder_buffered = reorder_buffered_.load(std::memory_order_relaxed);
  s.req_dedup_hits = req_dedup_hits_.load(std::memory_order_relaxed);
  s.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
  s.suspicions_reported = suspicions_reported_.load(std::memory_order_relaxed);
  return s;
}

txn::TxManagerOptions Replica::MgrOptions(bool head_role) const {
  txn::TxManagerOptions opts;
  // Fit the intent log into the configured region (64 slots plus slack).
  opts.log.num_slots = 64;
  opts.log.slot_size = (options_.log_region_size / (opts.log.num_slots + 8)) & ~uint64_t{4095};
  opts.log.max_records = 128;
  if (!options_.kamino) {
    opts.engine = txn::EngineType::kUndoLog;
  } else if (!head_role) {
    opts.engine = txn::EngineType::kChainReplica;
  } else if (options_.head_alpha >= 1.0) {
    opts.engine = txn::EngineType::kKaminoSimple;
  } else {
    opts.engine = txn::EngineType::kKaminoDynamic;
    opts.alpha = options_.head_alpha;
  }
  opts.external_backup_pool = backup_pool_.get();
  return opts;
}

Status Replica::EnsureMainPool() {
  if (pool_ != nullptr) {
    return Status::Ok();
  }
  nvm::PoolOptions popts;
  popts.size = options_.pool_size;
  popts.crash_sim = true;
  popts.flush_latency_ns = options_.flush_latency_ns;
  Result<std::unique_ptr<nvm::Pool>> p = nvm::Pool::Create(popts);
  if (!p.ok()) {
    return p.status();
  }
  pool_ = std::move(*p);
  return Status::Ok();
}

Status Replica::EnsureBackupPool(bool force_full) {
  if (backup_pool_ != nullptr) {
    if (!force_full || backup_pool_->size() >= options_.pool_size) {
      return Status::Ok();
    }
    // Promotion rebuilds a full backup (kKaminoSimple); a dynamic-alpha pool
    // from a previous life is too small. Callers reset mgr_ first.
    backup_pool_.reset();
  }
  nvm::PoolOptions bopts;
  bopts.crash_sim = true;
  bopts.flush_latency_ns = options_.flush_latency_ns;
  if (force_full || options_.head_alpha >= 1.0) {
    // Promotion always builds a full backup (kKaminoSimple), whatever the
    // configured alpha — the dynamic store cannot be rebuilt from a cold
    // start without replaying history.
    bopts.size = options_.pool_size;
  } else {
    const uint64_t budget =
        static_cast<uint64_t>(options_.head_alpha * static_cast<double>(options_.pool_size));
    bopts.size = txn::DynamicBackupStore::RequiredPoolSize(budget, 1 << 14);
  }
  Result<std::unique_ptr<nvm::Pool>> p = nvm::Pool::Create(bopts);
  if (!p.ok()) {
    return p.status();
  }
  backup_pool_ = std::move(*p);
  return Status::Ok();
}

uint64_t Replica::view_cursor() const {
  if (heap_ == nullptr || pool_ == nullptr) {
    return kViewCursorNone;
  }
  const auto* anchor = static_cast<const ChainAnchor*>(pool_->At(heap_->root()));
  return anchor->view_cursor;
}

void Replica::StampViewCursor(uint64_t value) {
  nvm::PersistSiteScope site("chain/promote-cursor");
  auto* anchor = static_cast<ChainAnchor*>(pool_->At(heap_->root()));
  anchor->view_cursor = value;
  pool_->PersistU64(&anchor->view_cursor);
}

Status Replica::BuildStore(bool attach, bool run_recovery) {
  const bool head_role = is_head();

  KAMINO_RETURN_IF_ERROR(EnsureMainPool());
  if (head_role && options_.kamino) {
    KAMINO_RETURN_IF_ERROR(EnsureBackupPool());
  }

  if (!attach) {
    Result<std::unique_ptr<heap::Heap>> h =
        heap::Heap::CreateOn(pool_.get(), options_.log_region_size);
    if (!h.ok()) {
      return h.status();
    }
    heap_ = std::move(*h);
    txn::TxManagerOptions mopts = MgrOptions(head_role);
    if (mopts.engine == txn::EngineType::kKaminoDynamic) {
      mopts.dynamic_lookup_buckets = 1 << 14;
    }
    Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Create(heap_.get(), mopts);
    if (!m.ok()) {
      return m.status();
    }
    mgr_ = std::move(*m);

    Result<std::unique_ptr<pds::BPlusTree>> t = pds::BPlusTree::Create(mgr_.get());
    if (!t.ok()) {
      return t.status();
    }
    tree_ = std::move(*t);

    uint64_t anchor = 0;
    Status st = mgr_->Run([&](txn::Tx& tx) -> Status {
      Result<uint64_t> off = tx.Alloc(sizeof(ChainAnchor));  // Zeroed ring.
      if (!off.ok()) {
        return off.status();
      }
      Result<void*> w = tx.OpenWrite(*off, 3 * sizeof(uint64_t));
      if (!w.ok()) {
        return w.status();
      }
      auto* hdr = static_cast<ChainAnchor*>(*w);
      hdr->magic = kChainAnchorMagic;
      // An initial head's backup is maintained from the first transaction,
      // so it is born trusted; everyone else is born untrusted and only a
      // completed promotion (HeadComplete stamp) upgrades them.
      hdr->view_cursor = head_role ? kViewCursorHeadComplete : kViewCursorNone;
      hdr->tree_anchor = tree_->anchor();
      anchor = *off;
      return Status::Ok();
    });
    if (!st.ok()) {
      return st;
    }
    mgr_->WaitIdle();
    heap_->set_root(anchor);
    applied_watermark_.store(0, std::memory_order_relaxed);
    return Status::Ok();
  }

  // Attach path (reboot / promotion).
  Result<std::unique_ptr<heap::Heap>> h = heap::Heap::Attach(pool_.get());
  if (!h.ok()) {
    return h.status();
  }
  heap_ = std::move(*h);
  txn::TxManagerOptions mopts = MgrOptions(head_role);
  // Promotion-cursor trust rule (DESIGN.md §13): a Kamino head may only let
  // engine recovery roll back from the local backup if the durable cursor
  // attests the backup was fully built. Any other value means a promotion
  // crashed mid-flight — the caller (QuickReboot) must resume the promotion
  // through the chain instead, so recovery is skipped here.
  const auto* hdr = static_cast<const ChainAnchor*>(pool_->At(heap_->root()));
  const bool trust_backup =
      !options_.kamino || hdr->view_cursor == kViewCursorHeadComplete;
  mopts.skip_recovery = !run_recovery || (head_role && !trust_backup);
  if (mopts.engine == txn::EngineType::kKaminoDynamic) {
    mopts.dynamic_lookup_buckets = 1 << 14;
  }
  Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Open(heap_.get(), mopts);
  if (!m.ok()) {
    return m.status();
  }
  mgr_ = std::move(*m);

  const auto* anchor = static_cast<const ChainAnchor*>(pool_->At(heap_->root()));
  Result<std::unique_ptr<pds::BPlusTree>> t =
      pds::BPlusTree::Attach(mgr_.get(), anchor->tree_anchor);
  if (!t.ok()) {
    return t.status();
  }
  tree_ = std::move(*t);
  applied_watermark_.store(RingMax(), std::memory_order_relaxed);
  return Status::Ok();
}

uint64_t Replica::RingMax() const {
  const auto* anchor = static_cast<const ChainAnchor*>(pool_->At(heap_->root()));
  uint64_t max_id = 0;
  for (uint64_t slot : anchor->ring) {
    max_id = std::max(max_id, slot);
  }
  return max_id;
}

Status Replica::Init() {
  KAMINO_RETURN_IF_ERROR(BuildStore(/*attach=*/false, /*run_recovery=*/false));
  next_op_id_ = 1;
  return Status::Ok();
}

void Replica::Start() {
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  {
    // Fresh liveness grace for the neighbours: suspicion clocks start now.
    std::lock_guard<std::mutex> lk(hb_mu_);
    last_heard_.clear();
    next_heartbeat_ = std::chrono::steady_clock::now();
  }
  loop_thread_ = std::thread([this] { Loop(); });
}

void Replica::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(stop_mu_);
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  running_.store(false, std::memory_order_relaxed);
}

void Replica::CrashStop() {
  options_.network->SetNodeDown(options_.node_id, true);
  Stop();
}

void Replica::ArmCrashDuringNextApply() {
  crash_next_apply_.store(true, std::memory_order_relaxed);
}

void Replica::UpdateView(const View& view) {
  bool reack = false;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    const uint64_t old_head = view_.head();
    const uint64_t old_tail = view_.tail();
    view_ = view;
    // The tail re-acknowledges its progress whenever the head must relearn
    // it: a new head was promoted, or this node just became the tail (the
    // old tail's acknowledgments may have been lost with it) — paper §5.2.
    reack = view.tail() == options_.node_id && view.head() != 0 &&
            view.head() != options_.node_id &&
            (view.head() != old_head || old_tail != options_.node_id);
  }
  {
    // New neighbours get a fresh suspicion grace period.
    const uint64_t pred = view.PredecessorOf(options_.node_id);
    const uint64_t succ = view.SuccessorOf(options_.node_id);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lk(hb_mu_);
    if (pred != 0) {
      last_heard_[pred] = now;
    }
    if (succ != 0) {
      last_heard_[succ] = now;
    }
  }
  if (reack && running_.load(std::memory_order_relaxed)) {
    // Re-acknowledge progress to the new head so it can release inherited
    // locks (paper §5.2: the new head queries / learns the tail's progress).
    Writer w;
    w.U64(applied_watermark_.load(std::memory_order_relaxed));
    net::Message msg;
    msg.type = kOpAck;
    msg.view_id = view.view_id;
    msg.payload = w.Take();
    (void)endpoint_->Send(view.head(), std::move(msg));
  }
}

// --- Operation execution -------------------------------------------------------

Status Replica::RunOpTransaction(uint64_t op_id, const Op& op) {
  auto guard = tree_->LockExclusive();
  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    switch (op.kind) {
      case OpKind::kUpsert:
      case OpKind::kMultiUpsert:
        for (const KvPair& p : op.pairs) {
          KAMINO_RETURN_IF_ERROR(tree_->UpsertInTx(tx, p.key, p.value));
        }
        break;
      case OpKind::kDelete:
        KAMINO_RETURN_IF_ERROR(tree_->DeleteInTx(tx, op.pairs.at(0).key));
        break;
    }
    // Applied-op marker, inside the same transaction (atomic with the op).
    Result<void*> w = tx.OpenWrite(MarkerOffset(op_id), sizeof(uint64_t));
    if (!w.ok()) {
      return w.status();
    }
    *static_cast<uint64_t*>(*w) = op_id;

    if (crash_next_apply_.exchange(false, std::memory_order_relaxed)) {
      // Fault injection: the replica loses power mid-transaction — in-place
      // edits may have reached NVM but the commit record never does.
      pool_->Flush(pool_->At(MarkerOffset(op_id)), sizeof(uint64_t));
      pool_->Drain();
      tx.LeakForCrashTest();
      crashed_mid_apply_.store(true, std::memory_order_relaxed);
      return Status::Unavailable("simulated power failure mid-apply");
    }
    return Status::Ok();
  });
}

Status Replica::ApplyOp(uint64_t op_id, const Op& op) {
  if (op_id <= applied_watermark_.load(std::memory_order_relaxed)) {
    // Replay duplicate. Still record the request id: a rebooted replica
    // relearns its dedup table from replayed ops.
    if (op.req_id != 0) {
      RecordRequest(op.req_id, op_id);
    }
    return Status::Ok();
  }
  Status st = RunOpTransaction(op_id, op);
  if (!st.ok()) {
    return st;
  }
  applied_watermark_.store(op_id, std::memory_order_relaxed);
  if (op.req_id != 0) {
    // Every replica remembers applied request ids so a promoted head can
    // answer client retries for ops it applied as a middle.
    RecordRequest(op.req_id, op_id);
  }
  return Status::Ok();
}

void Replica::RecordRequest(uint64_t req_id, uint64_t op_id) {
  std::lock_guard<std::mutex> lk(req_mu_);
  auto [it, inserted] = req_to_op_.emplace(req_id, op_id);
  if (!inserted) {
    return;
  }
  req_fifo_.push_back(req_id);
  while (req_fifo_.size() > kReqTableCap) {
    req_to_op_.erase(req_fifo_.front());
    req_fifo_.pop_front();
  }
}

std::optional<uint64_t> Replica::LookupRequest(uint64_t req_id) {
  std::lock_guard<std::mutex> lk(req_mu_);
  auto it = req_to_op_.find(req_id);
  if (it == req_to_op_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Replica::InsertInFlight(uint64_t op_id, const Op& op) {
  InFlight inf;
  inf.op = op;
  inf.backoff_ms = options_.retx_base_ms;
  inf.next_retx = std::chrono::steady_clock::now() + std::chrono::milliseconds(options_.retx_base_ms);
  std::lock_guard<std::mutex> lk(inflight_mu_);
  in_flight_.emplace(op_id, std::move(inf));
}

void Replica::SendForward(uint64_t dst, uint64_t view_id, uint64_t op_id, const Op& op) {
  Writer w;
  w.U64(op_id);
  EncodeOp(op, &w);
  net::Message msg;
  msg.type = kOpForward;
  msg.view_id = view_id;
  msg.payload = w.Take();
  (void)endpoint_->Send(dst, std::move(msg));
}

void Replica::ForwardDownstream(uint64_t op_id, const Op& op) {
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  const uint64_t succ = v.SuccessorOf(options_.node_id);
  if (succ == 0) {
    // Single-node chain: this replica is also the tail.
    OnTailCommit(op_id);
    return;
  }
  SendForward(succ, v.view_id, op_id, op);
}

void Replica::OnTailCommit(uint64_t op_id) {
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  uint64_t prev = cleaned_below_.load(std::memory_order_relaxed);
  while (prev < op_id &&
         !cleaned_below_.compare_exchange_weak(prev, op_id, std::memory_order_relaxed)) {
  }
  if (v.head() == options_.node_id) {
    // Local completion (single-node chain).
    NoteCommitted(op_id);
    std::lock_guard<std::mutex> lk(inflight_mu_);
    in_flight_.erase(in_flight_.begin(), in_flight_.upper_bound(op_id));
    return;
  }
  // Final acknowledgment goes to the head (paper §5.1: "the tail sends the
  // final acknowledgment to the head instead of the client").
  {
    Writer w;
    w.U64(op_id);
    net::Message msg;
    msg.type = kOpAck;
    msg.view_id = v.view_id;
    msg.payload = w.Take();
    (void)endpoint_->Send(v.head(), std::move(msg));
  }
  // The tail has no downstream to replay to: its buffered copy can go now,
  // and clean-up acknowledgments travel upstream.
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    in_flight_.erase(in_flight_.begin(), in_flight_.upper_bound(op_id));
  }
  const uint64_t pred = v.PredecessorOf(options_.node_id);
  if (pred != 0) {
    Writer w;
    w.U64(op_id);
    net::Message msg;
    msg.type = kCleanupAck;
    msg.view_id = v.view_id;
    msg.payload = w.Take();
    (void)endpoint_->Send(pred, std::move(msg));
  }
}

void Replica::NoteCommitted(uint64_t op_id) {
  std::vector<std::vector<uint64_t>> to_unlock;
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    last_acked_ = std::max(last_acked_, op_id);
  }
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    // Inherited in-flight ops (head promotion) unlock on their acks.
    for (auto it = orphan_ops_.begin(); it != orphan_ops_.end() && it->first <= op_id;) {
      to_unlock.push_back(std::move(it->second));
      it = orphan_ops_.erase(it);
    }
  }
  for (const auto& keys : to_unlock) {
    UnlockKeys(keys);
  }
  comp_cv_.notify_all();
}

// --- Client API (head) ----------------------------------------------------------

void Replica::LockKeys(const std::vector<uint64_t>& keys) {
  std::unique_lock<std::mutex> lk(keylock_mu_);
  for (uint64_t key : keys) {
    keylock_cv_.wait(lk, [&] { return !locked_keys_.count(key); });
    locked_keys_[key] = true;
  }
}

void Replica::UnlockKeys(const std::vector<uint64_t>& keys) {
  {
    std::lock_guard<std::mutex> lk(keylock_mu_);
    for (uint64_t key : keys) {
      locked_keys_.erase(key);
    }
  }
  keylock_cv_.notify_all();
}

Replica::WriteTicket Replica::AdmitWrite(const Op& op) {
  WriteTicket ticket;
  if (!running_.load(std::memory_order_relaxed)) {
    ticket.status = Status::Unavailable("replica down");
    return ticket;
  }
  if (op.req_id != 0) {
    if (std::optional<uint64_t> known = LookupRequest(op.req_id)) {
      // Client retry of a request this chain already executed (possibly under
      // a previous head). Do not re-execute: hand back a ticket for the
      // original op so the caller just waits for (or observes) its ack.
      req_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      ticket.admitted = true;
      ticket.op_id = *known;
      ticket.status = Status::Ok();
      return ticket;
    }
  }
  // Admission control for dependent transactions: per-key chain locks held
  // from admission until the tail acknowledges (paper §5: "the head node
  // holds appropriate locks until the tail commits").
  ticket.keys.reserve(op.pairs.size());
  for (const KvPair& p : op.pairs) {
    ticket.keys.push_back(p.key);
  }
  std::sort(ticket.keys.begin(), ticket.keys.end());
  ticket.keys.erase(std::unique(ticket.keys.begin(), ticket.keys.end()), ticket.keys.end());
  LockKeys(ticket.keys);

  {
    // Serialized execution keeps persistent offsets deterministic across the
    // chain (see the class comment).
    std::lock_guard<std::mutex> lk(exec_mu_);
    ticket.op_id = next_op_id_;
    ticket.status = ApplyOp(ticket.op_id, op);
    if (ticket.status.ok()) {
      ++next_op_id_;
      InsertInFlight(ticket.op_id, op);
      ForwardDownstream(ticket.op_id, op);
      ticket.admitted = true;
    }
  }
  if (!ticket.admitted) {
    // Aborted locally: never admitted to the chain (paper Figure 8, abort).
    UnlockKeys(ticket.keys);
    return ticket;
  }
  if (!options_.kamino) {
    // Traditional chain replication serializes via the head's ordering
    // alone; it does not hold locks until the tail commits (Table 1 charges
    // dependent and independent transactions the same latency). Only
    // Kamino-Tx-Chain keeps the keys locked until the tail's ack.
    UnlockKeys(ticket.keys);
    ticket.keys.clear();
  }
  return ticket;
}

Status Replica::WaitWrite(WriteTicket& ticket) {
  return WaitWriteFor(ticket, options_.client_timeout_ms);
}

Status Replica::WaitWriteFor(WriteTicket& ticket, uint64_t timeout_ms) {
  if (!ticket.admitted) {
    return ticket.status;
  }
  Status out = Status::Ok();
  {
    std::unique_lock<std::mutex> lk(comp_mu_);
    const bool done = comp_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                        [&] { return last_acked_ >= ticket.op_id; });
    if (!done) {
      out = Status::Unavailable("chain commit timeout");
    }
  }
  UnlockKeys(ticket.keys);
  ticket.admitted = false;
  return out;
}

Status Replica::ClientWrite(const Op& op) {
  WriteTicket ticket = AdmitWrite(op);
  return WaitWrite(ticket);
}

Result<std::string> Replica::ClientRead(uint64_t key, uint64_t timeout_ms) {
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica down");
  }
  if (timeout_ms == 0) {
    timeout_ms = options_.client_timeout_ms;
  }
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  if (v.tail() == options_.node_id) {
    return tree_->Get(key);  // Single-node chain: serve locally.
  }
  uint64_t req_id;
  {
    std::lock_guard<std::mutex> lk(read_mu_);
    req_id = next_read_id_++;
    reads_[req_id];
  }
  Writer w;
  w.U64(req_id);
  w.U64(key);
  net::Message msg;
  msg.type = kReadReq;
  msg.view_id = v.view_id;
  msg.payload = w.Take();
  Status send = endpoint_->Send(v.tail(), std::move(msg));
  if (!send.ok()) {
    std::lock_guard<std::mutex> lk(read_mu_);
    reads_.erase(req_id);
    return send;
  }
  std::unique_lock<std::mutex> lk(read_mu_);
  const bool done = read_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                      [&] { return reads_[req_id].done; });
  PendingRead pr = std::move(reads_[req_id]);
  reads_.erase(req_id);
  if (!done) {
    return Status::Unavailable("read timeout");
  }
  if (!pr.found) {
    return Status::NotFound("key absent");
  }
  return pr.value;
}

Result<std::string> Replica::StaleRead(uint64_t key, uint64_t* applied_out) {
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica down");
  }
  // The watermark is sampled before the read: the value returned reflects at
  // least this many applied ops (the tree read takes object read locks, so a
  // key mid-apply is waited out, never torn).
  if (applied_out != nullptr) {
    *applied_out = applied_watermark_.load(std::memory_order_acquire);
  }
  return tree_->Get(key);
}

// --- Message loop ----------------------------------------------------------------

void Replica::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::optional<net::Message> msg = endpoint_->Receive(kReceivePollMs);
    if (msg.has_value()) {
      NoteHeard(msg->src);
      if (IsDuplicateMessage(*msg)) {
        dedup_dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        HandleMessage(std::move(*msg));
      }
      if (crashed_mid_apply_.load(std::memory_order_relaxed)) {
        // The simulated power failure takes the node off the network too.
        options_.network->SetNodeDown(options_.node_id, true);
        running_.store(false, std::memory_order_relaxed);
        return;
      }
    }
    TimerPass(std::chrono::steady_clock::now());
  }
}

void Replica::NoteHeard(uint64_t src) {
  std::lock_guard<std::mutex> lk(hb_mu_);
  last_heard_[src] = std::chrono::steady_clock::now();
}

bool Replica::IsDuplicateMessage(const net::Message& msg) {
  PeerWindow& w = peer_windows_[msg.src];
  if (msg.seq + kSeqWindow < w.max_seq) {
    return true;  // Far behind the window: assume duplicate.
  }
  if (!w.seen.insert({msg.seq, msg.view_id}).second) {
    return true;
  }
  w.max_seq = std::max(w.max_seq, msg.seq);
  while (!w.seen.empty() && w.seen.begin()->first + kSeqWindow < w.max_seq) {
    w.seen.erase(w.seen.begin());
  }
  return false;
}

void Replica::TimerPass(std::chrono::steady_clock::time_point now) {
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  const uint64_t self = options_.node_id;
  const uint64_t pred = v.PredecessorOf(self);
  const uint64_t succ = v.SuccessorOf(self);
  const uint64_t neighbours[2] = {pred, succ};

  if (options_.heartbeat_interval_ms > 0 && v.Contains(self)) {
    bool beat = false;
    {
      std::lock_guard<std::mutex> lk(hb_mu_);
      if (now >= next_heartbeat_) {
        next_heartbeat_ = now + std::chrono::milliseconds(options_.heartbeat_interval_ms);
        beat = true;
      }
    }
    if (beat) {
      for (uint64_t n : neighbours) {
        if (n == 0) {
          continue;
        }
        Writer w;
        w.U64(applied_watermark_.load(std::memory_order_relaxed));
        net::Message msg;
        msg.type = kHeartbeat;
        msg.view_id = v.view_id;
        msg.payload = w.Take();
        (void)endpoint_->Send(n, std::move(msg));
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // A silent neighbour is reported to the membership manager, which
    // validates (current view, both still members) so only the first report
    // per failure triggers the view change.
    std::vector<uint64_t> suspects;
    {
      std::lock_guard<std::mutex> lk(hb_mu_);
      for (uint64_t n : neighbours) {
        if (n == 0) {
          continue;
        }
        auto it = last_heard_.find(n);
        if (it == last_heard_.end()) {
          last_heard_[n] = now;  // First sighting of this neighbour: grace.
          continue;
        }
        if (now - it->second > std::chrono::milliseconds(options_.suspicion_timeout_ms) &&
            reported_.insert({v.view_id, n}).second) {
          suspects.push_back(n);
        }
      }
    }
    for (uint64_t n : suspects) {
      suspicions_reported_.fetch_add(1, std::memory_order_relaxed);
      (void)options_.membership->ReportSuspicion(self, n, v.view_id);
    }
  }

  // Retransmit overdue in-flight ops to the successor with exponential
  // backoff. The cleanup ack (tail committed) is what stops retransmission;
  // the receive side regenerates acks for anything it already applied.
  if (succ != 0) {
    std::vector<std::pair<uint64_t, Op>> resend;
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      for (auto& [op_id, inf] : in_flight_) {
        if (inf.next_retx > now) {
          continue;
        }
        inf.backoff_ms = std::min(inf.backoff_ms * 2, options_.retx_cap_ms);
        inf.next_retx = now + std::chrono::milliseconds(inf.backoff_ms);
        resend.emplace_back(op_id, inf.op);
        if (resend.size() >= kMaxRetxPerPass) {
          break;
        }
      }
    }
    for (auto& [op_id, op] : resend) {
      retransmits_.fetch_add(1, std::memory_order_relaxed);
      SendForward(succ, v.view_id, op_id, op);
    }
  }
}

void Replica::HandleMessage(net::Message&& msg) {
  switch (msg.type) {
    case kOpForward:
      HandleOpForward(msg);
      break;
    case kOpAck: {
      Reader r(msg.payload);
      uint64_t op_id = 0;
      if (!r.U64(&op_id)) {
        return;
      }
      NoteCommitted(op_id);
      break;
    }
    case kCleanupAck:
      HandleCleanupAck(msg);
      break;
    case kReadReq:
      HandleReadReq(msg);
      break;
    case kReadReply: {
      Reader r(msg.payload);
      uint64_t req_id = 0, found = 0;
      std::string value;
      if (!r.U64(&req_id) || !r.U64(&found) || !r.Str(&value)) {
        return;
      }
      {
        std::lock_guard<std::mutex> lk(read_mu_);
        auto it = reads_.find(req_id);
        if (it != reads_.end()) {
          it->second.done = true;
          it->second.found = (found != 0);
          it->second.value = std::move(value);
        }
      }
      read_cv_.notify_all();
      break;
    }
    case kFetchObjects:
      HandleFetchObjects(msg);
      break;
    case kReplayReq:
      HandleReplayReq(msg);
      break;
    case kQueryTail: {
      Writer w;
      w.U64(applied_watermark_.load(std::memory_order_relaxed));
      net::Message reply;
      reply.type = kTailInfo;
      reply.view_id = msg.view_id;
      reply.payload = w.Take();
      (void)endpoint_->Send(msg.src, std::move(reply));
      break;
    }
    case kTailInfo: {
      // The tail's progress report: everything at or below it is committed
      // chain-wide (the tail applies strictly in order).
      Reader r(msg.payload);
      uint64_t watermark = 0;
      if (!r.U64(&watermark)) {
        return;
      }
      NoteCommitted(watermark);
      break;
    }
    case kStateReq: {
      // Bulk state transfer for a joining tail. The chain is quiesced by the
      // orchestrator during joins, but the engine's applier threads release
      // log slots asynchronously even after the last client op is acked —
      // drain them before taking the raw snapshot.
      mgr_->WaitIdle();
      net::Message reply;
      reply.type = kStateChunk;
      reply.view_id = msg.view_id;
      reply.payload.assign(pool_->base(), pool_->base() + pool_->size());
      (void)endpoint_->Send(msg.src, std::move(reply));
      break;
    }
    case kHeartbeat:
      // Liveness only; NoteHeard already refreshed the suspicion clock.
      break;
    default:
      break;
  }
}

bool Replica::ApplyAndForward(uint64_t op_id, const Op& op) {
  Status st = ApplyOp(op_id, op);
  if (!st.ok()) {
    return false;  // Mid-apply crash fault, or a hard error; do not forward.
  }
  InsertInFlight(op_id, op);
  ForwardDownstream(op_id, op);
  return true;
}

void Replica::HandleOpForward(const net::Message& msg) {
  Reader r(msg.payload);
  uint64_t op_id = 0;
  Op op;
  if (!r.U64(&op_id) || !DecodeOp(&r, &op)) {
    return;
  }
  const uint64_t applied = applied_watermark_.load(std::memory_order_relaxed);
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  const uint64_t succ = v.SuccessorOf(options_.node_id);

  if (op_id <= applied) {
    // Already applied: the sender retransmitted because some downstream ack
    // or upstream cleanup was lost. Regenerate what it is evidently missing
    // instead of re-executing (idempotence).
    regen_acks_.fetch_add(1, std::memory_order_relaxed);
    if (op.req_id != 0) {
      RecordRequest(op.req_id, op_id);
    }
    if (succ == 0) {
      OnTailCommit(op_id);  // Tail: re-ack the head, re-clean upstream.
      return;
    }
    const uint64_t cleaned = cleaned_below_.load(std::memory_order_relaxed);
    if (op_id <= cleaned) {
      // Committed chain-wide already: the sender just needs the cleanup.
      const uint64_t pred = v.PredecessorOf(options_.node_id);
      if (pred != 0) {
        Writer w;
        w.U64(cleaned);
        net::Message fwd;
        fwd.type = kCleanupAck;
        fwd.view_id = v.view_id;
        fwd.payload = w.Take();
        (void)endpoint_->Send(pred, std::move(fwd));
      }
      return;
    }
    // Still awaiting the tail: push the pipeline downstream again.
    SendForward(succ, v.view_id, op_id, op);
    return;
  }

  if (op_id > applied + 1) {
    // Ahead of the watermark (reordered or lossy link): buffer until the gap
    // fills. Replicas must apply strictly in op_id order — offset determinism
    // across the chain is what makes neighbour byte-range repair sound.
    reorder_buffered_.fetch_add(1, std::memory_order_relaxed);
    pending_ops_.emplace(op_id, std::move(op));
    return;
  }

  // In-order: apply, then drain any buffered run that became consecutive.
  if (!ApplyAndForward(op_id, op)) {
    return;
  }
  while (!pending_ops_.empty()) {
    auto it = pending_ops_.begin();
    const uint64_t next = applied_watermark_.load(std::memory_order_relaxed) + 1;
    if (it->first < next) {
      pending_ops_.erase(it);
      continue;
    }
    if (it->first > next) {
      break;
    }
    Op buffered = std::move(it->second);
    pending_ops_.erase(it);
    if (!ApplyAndForward(next, buffered)) {
      return;
    }
  }
}

void Replica::HandleCleanupAck(const net::Message& msg) {
  Reader r(msg.payload);
  uint64_t op_id = 0;
  if (!r.U64(&op_id)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    in_flight_.erase(in_flight_.begin(), in_flight_.upper_bound(op_id));
  }
  uint64_t prev = cleaned_below_.load(std::memory_order_relaxed);
  while (prev < op_id &&
         !cleaned_below_.compare_exchange_weak(prev, op_id, std::memory_order_relaxed)) {
  }
  // Cleanup originates at the tail commit, so it is also commit evidence: if
  // the direct tail ack was lost, the head still learns completion here and
  // releases waiting clients.
  NoteCommitted(op_id);
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  const uint64_t pred = v.PredecessorOf(options_.node_id);
  if (pred != 0) {
    Writer w;
    w.U64(op_id);
    net::Message fwd;
    fwd.type = kCleanupAck;
    fwd.view_id = v.view_id;
    fwd.payload = w.Take();
    (void)endpoint_->Send(pred, std::move(fwd));
  }
}

void Replica::HandleReadReq(const net::Message& msg) {
  Reader r(msg.payload);
  uint64_t req_id = 0, key = 0;
  if (!r.U64(&req_id) || !r.U64(&key)) {
    return;
  }
  Result<std::string> v = tree_->Get(key);
  Writer w;
  w.U64(req_id);
  w.U64(v.ok() ? 1 : 0);
  w.Str(v.ok() ? *v : std::string());
  net::Message reply;
  reply.type = kReadReply;
  reply.view_id = msg.view_id;
  reply.payload = w.Take();
  (void)endpoint_->Send(msg.src, std::move(reply));
}

void Replica::HandleFetchObjects(const net::Message& msg) {
  Reader r(msg.payload);
  uint64_t req_id = 0;
  uint32_t n = 0;
  if (!r.U64(&req_id) || !r.U32(&n)) {
    return;
  }
  Writer w;
  w.U64(req_id);
  w.U32(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t off = 0, size = 0;
    if (!r.U64(&off) || !r.U64(&size)) {
      return;
    }
    w.U64(off);
    w.U64(size);
    w.Bytes(pool_->At(off), size);
  }
  net::Message reply;
  reply.type = kFetchReply;
  reply.view_id = msg.view_id;
  reply.payload = w.Take();
  (void)endpoint_->Send(msg.src, std::move(reply));
}

void Replica::HandleReplayReq(const net::Message& msg) {
  Reader r(msg.payload);
  uint64_t from = 0;
  if (!r.U64(&from)) {
    return;
  }
  std::map<uint64_t, Op> snapshot;
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    for (const auto& [op_id, inf] : in_flight_) {
      snapshot.emplace(op_id, inf.op);
    }
  }
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = view_;
  }
  for (const auto& [op_id, op] : snapshot) {
    if (op_id <= from) {
      continue;
    }
    SendForward(msg.src, v.view_id, op_id, op);
  }
}

// --- Reboot / promotion recovery -------------------------------------------------

Result<std::vector<std::pair<uint64_t, std::string>>> Replica::FetchRanges(
    uint64_t neighbour, const std::vector<txn::Intent>& intents) {
  Writer w;
  const uint64_t req_id = 0xFEED;
  w.U64(req_id);
  uint32_t n = 0;
  for (const txn::Intent& in : intents) {
    if (in.kind == txn::IntentKind::kWrite || in.kind == txn::IntentKind::kAlloc) {
      ++n;
    }
  }
  w.U32(n);
  for (const txn::Intent& in : intents) {
    if (in.kind == txn::IntentKind::kWrite || in.kind == txn::IntentKind::kAlloc) {
      w.U64(in.offset);
      w.U64(in.size);
    }
  }
  net::Message req;
  req.type = kFetchObjects;
  req.payload = w.Take();
  KAMINO_RETURN_IF_ERROR(endpoint_->Send(neighbour, std::move(req)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kRecoveryTimeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<net::Message> reply = endpoint_->Receive(kReceivePollMs);
    if (!reply.has_value()) {
      continue;
    }
    if (reply->type != kFetchReply) {
      continue;  // Stale traffic during recovery; safe to drop.
    }
    Reader r(reply->payload);
    uint64_t got_req = 0;
    uint32_t got_n = 0;
    if (!r.U64(&got_req) || got_req != req_id || !r.U32(&got_n)) {
      continue;
    }
    std::vector<std::pair<uint64_t, std::string>> out;
    out.reserve(got_n);
    for (uint32_t i = 0; i < got_n; ++i) {
      uint64_t off = 0, size = 0;
      std::string bytes;
      if (!r.U64(&off) || !r.U64(&size) || !r.Str(&bytes)) {
        return Status::Corruption("malformed fetch reply");
      }
      out.emplace_back(off, std::move(bytes));
    }
    return out;
  }
  return Status::Unavailable("fetch-objects timeout");
}

Status Replica::ResolveCommittedLocally(const std::vector<txn::RecoveredTx>& txs) {
  nvm::PersistSiteScope site("chain/local-resolve");
  for (const txn::RecoveredTx& tx : txs) {
    if (tx.state != txn::TxState::kCommitted) {
      continue;
    }
    txn::SlotHandle handle = mgr_->log()->HandleForRecovered(tx);
    // The in-place data is final; only deferred frees need re-execution.
    // Re-running this after a crash is idempotent: FreeRaw of an
    // already-free offset is a no-op and the slot release is last.
    for (const txn::Intent& in : tx.intents) {
      if (in.kind == txn::IntentKind::kFree) {
        KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
      }
    }
    mgr_->log()->ReleaseSlot(handle);
  }
  return Status::Ok();
}

Status Replica::ResolveIncompleteFromNeighbour(uint64_t neighbour, bool roll_forward) {
  nvm::PersistSiteScope site("chain/neighbour-repair");
  std::vector<txn::RecoveredTx> txs = mgr_->log()->ScanForRecovery();
  for (const txn::RecoveredTx& tx : txs) {
    txn::SlotHandle handle = mgr_->log()->HandleForRecovered(tx);
    if (tx.state == txn::TxState::kCommitted) {
      // Committed transactions resolve locally even without a backup: the
      // in-place data is final; only deferred frees need re-execution.
      for (const txn::Intent& in : tx.intents) {
        if (in.kind == txn::IntentKind::kFree) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
      mgr_->log()->ReleaseSlot(handle);
      continue;
    }
    if (roll_forward) {
      // Paper Figure 9, non-head reboot: complete the transaction using the
      // predecessor's (newer) object state.
      Result<std::vector<std::pair<uint64_t, std::string>>> ranges =
          FetchRanges(neighbour, tx.intents);
      if (!ranges.ok()) {
        return ranges.status();
      }
      size_t idx = 0;
      for (const txn::Intent& in : tx.intents) {
        if (in.kind == txn::IntentKind::kAlloc) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->ForceAllocAt(in.offset, in.size));
        }
        if (in.kind == txn::IntentKind::kWrite || in.kind == txn::IntentKind::kAlloc) {
          const auto& [off, bytes] = (*ranges)[idx++];
          std::memcpy(pool_->At(off), bytes.data(), bytes.size());
          pool_->Persist(pool_->At(off), bytes.size());
        } else if (in.kind == txn::IntentKind::kFree) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
      }
    } else {
      // New head: roll back using the successor's (older) object state.
      std::vector<txn::Intent> writes;
      for (const txn::Intent& in : tx.intents) {
        if (in.kind == txn::IntentKind::kWrite) {
          writes.push_back(in);
        }
      }
      Result<std::vector<std::pair<uint64_t, std::string>>> ranges =
          FetchRanges(neighbour, writes);
      if (!ranges.ok()) {
        return ranges.status();
      }
      size_t idx = 0;
      for (const txn::Intent& in : tx.intents) {
        if (in.kind == txn::IntentKind::kWrite) {
          const auto& [off, bytes] = (*ranges)[idx++];
          std::memcpy(pool_->At(off), bytes.data(), bytes.size());
          pool_->Persist(pool_->At(off), bytes.size());
        } else if (in.kind == txn::IntentKind::kAlloc) {
          KAMINO_RETURN_IF_ERROR(heap_->allocator()->FreeRaw(in.offset));
        }
        // kFree intents were deferred; rollback needs no action.
      }
    }
    mgr_->log()->ReleaseSlot(handle);
  }
  return Status::Ok();
}

Status Replica::RequestReplay(uint64_t from_node) {
  Writer w;
  w.U64(0);  // Replay everything still in the predecessor's in-flight queue.
  net::Message msg;
  msg.type = kReplayReq;
  msg.payload = w.Take();
  return endpoint_->Send(from_node, std::move(msg));
}

Status Replica::QuickReboot() {
  // 1. The machine is gone: thread dead, volatile state dropped, unflushed
  //    NVM lines lost.
  options_.network->SetNodeDown(options_.node_id, true);
  Stop();
  crashed_mid_apply_.store(false, std::memory_order_relaxed);
  tree_.reset();
  mgr_.reset();
  heap_.reset();
  KAMINO_RETURN_IF_ERROR(pool_->Crash());
  if (backup_pool_ != nullptr) {
    KAMINO_RETURN_IF_ERROR(backup_pool_->Crash());
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    in_flight_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    last_acked_ = 0;
  }
  {
    std::lock_guard<std::mutex> lk(req_mu_);
    req_to_op_.clear();
    req_fifo_.clear();
  }
  {
    // Chain-level key locks and orphan bookkeeping are volatile head state;
    // a rebooted node re-learns in-flight ops from the replay, and stale
    // locks would deadlock the first post-reboot admission.
    std::lock_guard<std::mutex> lk(keylock_mu_);
    locked_keys_.clear();
  }
  orphan_ops_.clear();
  // Loop-thread state (the loop is stopped here).
  pending_ops_.clear();
  peer_windows_.clear();
  cleaned_below_.store(0, std::memory_order_relaxed);

  // 2. Rejoin: learn the current view and our neighbours (paper §5.3).
  Result<View> view = options_.membership->RequestRejoin(
      options_.node_id, view_.view_id);
  if (!view.ok()) {
    return view.status();
  }
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    view_ = *view;
  }
  const bool head_role = view->head() == options_.node_id;

  // 3. Reattach. A head whose durable promotion cursor attests a fully built
  //    backup recovers from it (engine recovery); a head that lost power
  //    mid-promotion resumes the promotion through the chain instead
  //    (BuildStore skipped recovery — the backup is untrusted); everyone
  //    else defers incomplete transactions to the neighbour fetch.
  KAMINO_RETURN_IF_ERROR(BuildStore(/*attach=*/true, /*run_recovery=*/head_role));

  options_.network->SetNodeDown(options_.node_id, false);

  if (head_role && view_cursor() != kViewCursorHeadComplete) {
    // Power failure mid-promotion: the cursor never reached HeadComplete, so
    // re-run the takeover wholesale (every step is idempotent — DESIGN.md
    // §13). Re-stamp Promoting first in case the crash landed before the
    // original stamp persisted.
    StampViewCursor(kViewCursorPromoting);
    KAMINO_RETURN_IF_ERROR(CompletePromotion(*view));
  } else if (!head_role) {
    const uint64_t pred = view->PredecessorOf(options_.node_id);
    if (pred != 0) {
      KAMINO_RETURN_IF_ERROR(ResolveIncompleteFromNeighbour(pred, /*roll_forward=*/true));
      applied_watermark_.store(RingMax(), std::memory_order_relaxed);
    }
  }

  // 4. Resume and ask the predecessor to replay anything we missed.
  next_op_id_ = applied_watermark_.load(std::memory_order_relaxed) + 1;
  Start();
  const uint64_t pred = view->PredecessorOf(options_.node_id);
  if (pred != 0) {
    KAMINO_RETURN_IF_ERROR(RequestReplay(pred));
  }
  return Status::Ok();
}

Status Replica::CompletePromotion(const View& v) {
  const uint64_t succ = v.SuccessorOf(options_.node_id);

  // Resolve leftover log slots. Committed slots resolve locally (deferred
  // frees; no neighbour traffic). An incomplete transaction is rolled back
  // using the successor's older object state (paper Figure 9's "new head"
  // case) — in the common promotion path there is none; it exists only if
  // this node also just rebooted.
  {
    std::vector<txn::RecoveredTx> txs = mgr_->log()->ScanForRecovery();
    bool has_incomplete = false;
    for (const txn::RecoveredTx& tx : txs) {
      if (tx.state != txn::TxState::kCommitted) {
        has_incomplete = true;
      }
    }
    if (has_incomplete && succ == 0) {
      return Status::Unavailable("cannot roll back: no successor remains");
    }
    if (has_incomplete) {
      KAMINO_RETURN_IF_ERROR(
          ResolveIncompleteFromNeighbour(succ, /*roll_forward=*/false));
    } else if (!txs.empty()) {
      KAMINO_RETURN_IF_ERROR(ResolveCommittedLocally(txs));
    }
  }

  // Rebuild the manager in the head role (Kamino: backup store appears).
  // The durable tree anchor is read from the persistent ChainAnchor so this
  // works identically for a live promotion and a post-crash resumption.
  mgr_->WaitIdle();
  const uint64_t tree_anchor =
      static_cast<const ChainAnchor*>(pool_->At(heap_->root()))->tree_anchor;
  tree_.reset();
  mgr_.reset();
  txn::TxManagerOptions mopts;
  if (!options_.kamino) {
    mopts.engine = txn::EngineType::kUndoLog;
  } else {
    KAMINO_RETURN_IF_ERROR(EnsureBackupPool(/*force_full=*/true));
    mopts.engine = txn::EngineType::kKaminoSimple;
    mopts.external_backup_pool = backup_pool_.get();
  }
  mopts.skip_recovery = true;  // Log already resolved above.
  Result<std::unique_ptr<txn::TxManager>> m = txn::TxManager::Open(heap_.get(), mopts);
  if (!m.ok()) {
    return m.status();
  }
  mgr_ = std::move(*m);
  if (options_.kamino) {
    // The new head must have a consistent copy of everything before it can
    // admit in-place transactions (paper §5.2: "creates a local backup").
    // SyncAll is a full-pool overwrite, so re-running it after a crash is
    // idempotent regardless of how much of a previous sync persisted.
    static_cast<txn::FullBackupStore*>(mgr_->backup_store())->SyncAll();
  }
  // Commit point of the promotion: after this single 8-byte persist the
  // local backup is durably trusted and reboots recover engine-locally.
  StampViewCursor(kViewCursorHeadComplete);

  Result<std::unique_ptr<pds::BPlusTree>> t = pds::BPlusTree::Attach(mgr_.get(), tree_anchor);
  if (!t.ok()) {
    return t.status();
  }
  tree_ = std::move(*t);

  applied_watermark_.store(RingMax(), std::memory_order_relaxed);
  next_op_id_ = applied_watermark_.load(std::memory_order_relaxed) + 1;

  // Inherit locks for in-flight transactions; the tail's progress report
  // (kQueryTail / re-acks on view change) releases them (paper §5.2).
  {
    std::lock_guard<std::mutex> il(inflight_mu_);
    std::lock_guard<std::mutex> vl(view_mu_);
    for (const auto& [op_id, inf] : in_flight_) {
      std::vector<uint64_t> keys;
      for (const KvPair& p : inf.op.pairs) {
        keys.push_back(p.key);
      }
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      {
        std::lock_guard<std::mutex> kl(keylock_mu_);
        for (uint64_t key : keys) {
          locked_keys_[key] = true;
        }
      }
      orphan_ops_.emplace(op_id, std::move(keys));
    }
  }
  return Status::Ok();
}

Status Replica::PromoteToHead() {
  // Called after the membership change already made this node the head.
  // Promotion can now happen mid-traffic (detector-driven): stop the loop
  // first, then let the engine's appliers drain before touching the log.
  Stop();
  mgr_->WaitIdle();
  pending_ops_.clear();  // Buffered future ops died with the old head.
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = options_.membership->current();
    view_ = v;
  }
  if (v.head() != options_.node_id) {
    return Status::InvalidArgument("not the head in the current view");
  }

  // Durable intent to take over — the first persist of the promotion. From
  // here until the HeadComplete stamp, a power failure reboots into a
  // resumed promotion (QuickReboot re-runs CompletePromotion) instead of
  // trusting a half-built backup (DESIGN.md §13).
  StampViewCursor(kViewCursorPromoting);

  KAMINO_RETURN_IF_ERROR(CompletePromotion(v));

  Start();
  const uint64_t succ = v.SuccessorOf(options_.node_id);
  if (succ != 0) {
    // Learn the tail's progress to release inherited locks for ops it has
    // already committed.
    net::Message q;
    q.type = kQueryTail;
    Writer w;
    w.U64(0);
    q.payload = w.Take();
    KAMINO_RETURN_IF_ERROR(endpoint_->Send(v.tail(), std::move(q)));
  }
  return Status::Ok();
}

void Replica::InvalidateHeapImage() {
  // Join commit protocol (DESIGN.md §13): before any transferred byte lands,
  // durably zero the heap superblock magic so a crash mid-transfer can never
  // leave a stale-but-attachable image (the node may have carried a valid
  // heap from a previous life). The superblock page is rewritten last, as
  // the join's single commit point.
  nvm::PersistSiteScope site("chain/join-invalidate");
  auto* magic = reinterpret_cast<uint64_t*>(pool_->base());
  *magic = 0;
  pool_->PersistU64(magic);
}

Status Replica::JoinAsTail() {
  View v;
  {
    std::lock_guard<std::mutex> lk(view_mu_);
    v = options_.membership->current();
    view_ = v;
  }
  const uint64_t pred = v.PredecessorOf(options_.node_id);
  if (pred == 0) {
    return Status::InvalidArgument("joining tail needs a predecessor");
  }
  // A retried join starts from scratch: any half-transferred image is dead.
  tree_.reset();
  mgr_.reset();
  heap_.reset();
  KAMINO_RETURN_IF_ERROR(EnsureMainPool());
  InvalidateHeapImage();

  // State transfer: snapshot the predecessor's pool (chain quiesced by the
  // orchestrator during joins). The request is retransmitted with the
  // standard backoff policy — a single lost kStateReq must not burn the
  // whole recovery deadline.
  options_.network->SetNodeDown(options_.node_id, false);
  net::Message req;
  req.type = kStateReq;
  KAMINO_RETURN_IF_ERROR(endpoint_->Send(pred, std::move(req)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kRecoveryTimeoutMs);
  uint32_t backoff_ms = options_.retx_base_ms;
  auto next_retx = std::chrono::steady_clock::now() + std::chrono::milliseconds(backoff_ms);
  bool got = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<net::Message> reply = endpoint_->Receive(kReceivePollMs);
    if (!reply.has_value()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_retx) {
        net::Message again;
        again.type = kStateReq;
        KAMINO_RETURN_IF_ERROR(endpoint_->Send(pred, std::move(again)));
        state_req_retransmits_.fetch_add(1, std::memory_order_relaxed);
        backoff_ms = std::min(backoff_ms * 2, options_.retx_cap_ms);
        next_retx = now + std::chrono::milliseconds(backoff_ms);
      }
      continue;
    }
    if (reply->type != kStateChunk) {
      continue;
    }
    if (reply->payload.size() != pool_->size()) {
      return Status::Corruption("state transfer size mismatch");
    }
    // Two-phase install: body first, superblock page last. Until the
    // superblock persists, the pool is unattachable and a crash reboots
    // into a full re-transfer (RejoinAsTail); once it persists, the image
    // is complete. The superblock page is the join's atomic commit point.
    {
      nvm::PersistSiteScope site("chain/state-transfer");
      uint8_t* body = pool_->base() + kSuperblockPage;
      std::memcpy(body, reply->payload.data() + kSuperblockPage,
                  reply->payload.size() - kSuperblockPage);
      pool_->Persist(body, pool_->size() - kSuperblockPage);
    }
    {
      nvm::PersistSiteScope site("chain/join-commit");
      std::memcpy(pool_->base(), reply->payload.data(), kSuperblockPage);
      pool_->Persist(pool_->base(), kSuperblockPage);
    }
    got = true;
    break;
  }
  if (!got) {
    return Status::Unavailable("state transfer timeout");
  }

  KAMINO_RETURN_IF_ERROR(BuildStore(/*attach=*/true, /*run_recovery=*/false));
  // The transferred image carries the predecessor's promotion cursor; this
  // node joined as a tail and has no built backup, so its cursor must say
  // untrusted before it can ever be consulted (it would only be read if
  // this node is later promoted, which re-stamps it anyway — but a crash
  // before that stamp persists must not inherit the predecessor's trust).
  if (view_cursor() != kViewCursorNone) {
    StampViewCursor(kViewCursorNone);
  }
  next_op_id_ = applied_watermark_.load(std::memory_order_relaxed) + 1;
  Start();
  return RequestReplay(pred);
}

Status Replica::RejoinAsTail() {
  // Power-cycle: volatile state dropped, unflushed NVM lines lost, then the
  // join protocol restarts from the beginning (full re-transfer).
  options_.network->SetNodeDown(options_.node_id, true);
  Stop();
  crashed_mid_apply_.store(false, std::memory_order_relaxed);
  tree_.reset();
  mgr_.reset();
  heap_.reset();
  if (pool_ != nullptr) {
    KAMINO_RETURN_IF_ERROR(pool_->Crash());
  }
  if (backup_pool_ != nullptr) {
    KAMINO_RETURN_IF_ERROR(backup_pool_->Crash());
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    in_flight_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    last_acked_ = 0;
  }
  {
    std::lock_guard<std::mutex> lk(req_mu_);
    req_to_op_.clear();
    req_fifo_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(keylock_mu_);
    locked_keys_.clear();
  }
  orphan_ops_.clear();
  pending_ops_.clear();
  peer_windows_.clear();
  cleaned_below_.store(0, std::memory_order_relaxed);
  return JoinAsTail();
}

}  // namespace kamino::chain
