#include "src/chain/chain.h"

#include <chrono>
#include <thread>

namespace kamino::chain {

Chain::Chain(const ChainOptions& options) : options_(options) {}

Chain::~Chain() {
  for (auto& r : replicas_) {
    r->Stop();
  }
}

Result<std::unique_ptr<Chain>> Chain::Create(const ChainOptions& options) {
  auto chain = std::unique_ptr<Chain>(new Chain(options));
  Status st = chain->Init();
  if (!st.ok()) {
    return st;
  }
  return chain;
}

Status Chain::Init() {
  net::NetworkOptions nopts;
  nopts.one_way_latency_us = options_.one_way_latency_us;
  network_ = std::make_unique<net::Network>(nopts);

  const int count = options_.kamino ? options_.f + 2 : options_.f + 1;
  std::vector<uint64_t> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(next_node_id_++);
  }
  membership_ = std::make_unique<MembershipManager>(ids);

  for (uint64_t id : ids) {
    ReplicaOptions ropts;
    ropts.node_id = id;
    ropts.kamino = options_.kamino;
    ropts.head_alpha = options_.head_alpha;
    ropts.pool_size = options_.pool_size;
    ropts.log_region_size = options_.log_region_size;
    ropts.flush_latency_ns = options_.flush_latency_ns;
    ropts.client_timeout_ms = options_.client_timeout_ms;
    ropts.network = network_.get();
    ropts.membership = membership_.get();
    auto replica = std::make_unique<Replica>(ropts);
    KAMINO_RETURN_IF_ERROR(replica->Init());
    replicas_.push_back(std::move(replica));
  }
  for (auto& r : replicas_) {
    r->Start();
  }
  return Status::Ok();
}

Replica* Chain::head() {
  const View v = membership_->current();
  return replica_by_id(v.head());
}

Replica* Chain::replica_by_id(uint64_t node_id) {
  for (auto& r : replicas_) {
    if (r->node_id() == node_id) {
      return r.get();
    }
  }
  return nullptr;
}

uint64_t Chain::total_nvm_bytes() const {
  const View v = membership_->current();
  uint64_t total = 0;
  for (const auto& r : replicas_) {
    if (v.Contains(r->node_id())) {
      total += r->nvm_bytes();
    }
  }
  return total;
}

void Chain::BroadcastView() {
  const View v = membership_->current();
  for (auto& r : replicas_) {
    if (v.Contains(r->node_id())) {
      r->UpdateView(v);
    }
  }
}

// --- Client API -----------------------------------------------------------------

namespace {
// Admission happens under the (shared) recovery gate; the wait for the tail
// acknowledgment happens outside it so recovery can proceed while clients
// are parked.
Status WriteThroughGate(std::shared_mutex& gate, Replica* h, Op op) {
  if (h == nullptr) {
    return Status::Unavailable("no head");
  }
  Replica::WriteTicket ticket;
  {
    std::shared_lock<std::shared_mutex> g(gate);
    ticket = h->AdmitWrite(op);
  }
  return h->WaitWrite(ticket);
}
}  // namespace

Status Chain::Upsert(uint64_t key, std::string value) {
  Op op;
  op.kind = OpKind::kUpsert;
  op.pairs.push_back({key, std::move(value)});
  return WriteThroughGate(gate_, head(), std::move(op));
}

Status Chain::Delete(uint64_t key) {
  Op op;
  op.kind = OpKind::kDelete;
  op.pairs.push_back({key, ""});
  return WriteThroughGate(gate_, head(), std::move(op));
}

Status Chain::MultiUpsert(std::vector<KvPair> pairs) {
  Op op;
  op.kind = OpKind::kMultiUpsert;
  op.pairs = std::move(pairs);
  return WriteThroughGate(gate_, head(), std::move(op));
}

Result<std::string> Chain::Read(uint64_t key) {
  std::shared_lock<std::shared_mutex> gate(gate_);
  Replica* h = head();
  if (h == nullptr) {
    return Status::Unavailable("no head");
  }
  return h->ClientRead(key);
}

// --- Failure handling --------------------------------------------------------------

Status Chain::KillReplica(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* victim = replica_by_id(node_id);
  if (victim == nullptr) {
    return Status::NotFound("no such replica");
  }
  const View before = membership_->current();
  const bool was_head = before.head() == node_id;
  const uint64_t pred = before.PredecessorOf(node_id);
  const uint64_t succ = before.SuccessorOf(node_id);

  victim->CrashStop();
  membership_->ReportFailure(node_id);
  BroadcastView();

  if (was_head) {
    const View now = membership_->current();
    Replica* new_head = replica_by_id(now.head());
    if (new_head == nullptr) {
      return Status::Unavailable("chain empty");
    }
    KAMINO_RETURN_IF_ERROR(new_head->PromoteToHead());
  } else if (pred != 0 && succ != 0) {
    // Middle failure: the successor pulls anything the dead node swallowed
    // out of the predecessor's in-flight queue.
    Replica* s = replica_by_id(succ);
    if (s != nullptr) {
      KAMINO_RETURN_IF_ERROR(s->RequestReplay(pred));
    }
  }
  // Tail failure: UpdateView already made the new tail re-acknowledge its
  // progress to the head.
  return Status::Ok();
}

Status Chain::RebootReplica(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* victim = replica_by_id(node_id);
  if (victim == nullptr) {
    return Status::NotFound("no such replica");
  }
  return victim->QuickReboot();
}

Status Chain::AddReplica() {
  std::unique_lock<std::shared_mutex> gate(gate_);
  ReplicaOptions ropts;
  ropts.node_id = next_node_id_++;
  ropts.kamino = options_.kamino;
  ropts.head_alpha = options_.head_alpha;
  ropts.pool_size = options_.pool_size;
  ropts.log_region_size = options_.log_region_size;
  ropts.flush_latency_ns = options_.flush_latency_ns;
  ropts.client_timeout_ms = options_.client_timeout_ms;
  ropts.network = network_.get();
  ropts.membership = membership_.get();
  auto replica = std::make_unique<Replica>(ropts);
  membership_->AddTail(ropts.node_id);
  BroadcastView();
  Replica* raw = replica.get();
  replicas_.push_back(std::move(replica));
  return raw->JoinAsTail();
}

Status Chain::Quiesce(uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const View v = membership_->current();
  while (std::chrono::steady_clock::now() < deadline) {
    bool drained = true;
    for (uint64_t id : v.nodes) {
      Replica* r = replica_by_id(id);
      if (r != nullptr && r->alive() && r->in_flight_size() != 0) {
        drained = false;
        break;
      }
    }
    if (drained) {
      Replica* h = replica_by_id(v.head());
      if (h != nullptr && h->manager() != nullptr) {
        h->manager()->WaitIdle();
      }
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::Unavailable("quiesce timeout");
}

}  // namespace kamino::chain
