#include "src/chain/chain.h"

#include <chrono>
#include <thread>

namespace kamino::chain {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t MsUntil(Clock::time_point deadline) {
  const auto left = deadline - Clock::now();
  if (left <= Clock::duration::zero()) {
    return 0;
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}
}  // namespace

Chain::Chain(const ChainOptions& options) : options_(options) {}

Chain::~Chain() {
  // Detach the detector pipeline before tearing anything down: no new repair
  // tasks, then drain the worker, then stop the replicas.
  if (membership_ != nullptr) {
    membership_->SetViewChangeListener(nullptr);
  }
  {
    std::lock_guard<std::mutex> lk(repair_mu_);
    repair_stop_ = true;
  }
  repair_cv_.notify_all();
  if (repair_thread_.joinable()) {
    repair_thread_.join();
  }
  for (auto& r : replicas_) {
    r->Stop();
  }
}

Result<std::unique_ptr<Chain>> Chain::Create(const ChainOptions& options) {
  auto chain = std::unique_ptr<Chain>(new Chain(options));
  Status st = chain->Init();
  if (!st.ok()) {
    return st;
  }
  return chain;
}

ReplicaOptions Chain::MakeReplicaOptions(uint64_t node_id) const {
  ReplicaOptions ropts;
  ropts.node_id = node_id;
  ropts.kamino = options_.kamino;
  ropts.head_alpha = options_.head_alpha;
  ropts.pool_size = options_.pool_size;
  ropts.log_region_size = options_.log_region_size;
  ropts.flush_latency_ns = options_.flush_latency_ns;
  ropts.client_timeout_ms = options_.client_timeout_ms;
  ropts.retx_base_ms = options_.retx_base_ms;
  ropts.retx_cap_ms = options_.retx_cap_ms;
  ropts.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  ropts.suspicion_timeout_ms = options_.suspicion_timeout_ms;
  ropts.network = network_.get();
  ropts.membership = membership_.get();
  return ropts;
}

Status Chain::Init() {
  net::NetworkOptions nopts;
  nopts.one_way_latency_us = options_.one_way_latency_us;
  nopts.fault_seed = options_.fault_seed;
  network_ = std::make_unique<net::Network>(nopts);

  const int count = options_.kamino ? options_.f + 2 : options_.f + 1;
  std::vector<uint64_t> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(next_node_id_++);
  }
  membership_ = std::make_unique<MembershipManager>(ids);
  // Detector reports excise the suspect inside the membership manager; the
  // listener only enqueues — the repair worker fences and re-wires.
  membership_->SetViewChangeListener(
      [this](const View& /*new_view*/, uint64_t failed, const View& old_view) {
        {
          std::lock_guard<std::mutex> lk(repair_mu_);
          repair_queue_.push_back({failed, old_view});
        }
        repair_cv_.notify_one();
      });
  repair_thread_ = std::thread([this] { RepairWorker(); });

  for (uint64_t id : ids) {
    auto replica = std::make_unique<Replica>(MakeReplicaOptions(id));
    KAMINO_RETURN_IF_ERROR(replica->Init());
    replicas_.push_back(std::move(replica));
  }
  for (auto& r : replicas_) {
    r->Start();
  }
  return Status::Ok();
}

Replica* Chain::head() {
  const View v = membership_->current();
  return replica_by_id(v.head());
}

Replica* Chain::replica_by_id(uint64_t node_id) {
  for (auto& r : replicas_) {
    if (r->node_id() == node_id) {
      return r.get();
    }
  }
  return nullptr;
}

uint64_t Chain::total_nvm_bytes() const {
  const View v = membership_->current();
  uint64_t total = 0;
  for (const auto& r : replicas_) {
    if (v.Contains(r->node_id())) {
      total += r->nvm_bytes();
    }
  }
  return total;
}

ChainNetworkStats Chain::NetworkStats() {
  ChainNetworkStats out;
  out.net = network_->TotalStats();
  {
    std::shared_lock<std::shared_mutex> g(gate_);
    for (const auto& r : replicas_) {
      const ReplicaProtocolStats s = r->protocol_stats();
      out.retransmits += s.retransmits;
      out.state_req_retransmits += s.state_req_retransmits;
      out.dedup_dropped += s.dedup_dropped;
      out.regen_acks += s.regen_acks;
      out.reorder_buffered += s.reorder_buffered;
      out.req_dedup_hits += s.req_dedup_hits;
      out.heartbeats_sent += s.heartbeats_sent;
      out.suspicions_reported += s.suspicions_reported;
    }
  }
  out.suspicion_view_changes = membership_->suspicion_view_changes();
  return out;
}

void Chain::BroadcastView() {
  const View v = membership_->current();
  for (auto& r : replicas_) {
    if (v.Contains(r->node_id())) {
      r->UpdateView(v);
    }
  }
}

// --- Client API -----------------------------------------------------------------

Status Chain::DeadlineStatus(const Status& last) const {
  const View v = membership_->current();
  const size_t full =
      static_cast<size_t>(options_.kamino ? options_.f + 2 : options_.f + 1);
  if (!v.nodes.empty() && v.nodes.size() < full) {
    return Status::Degraded("chain below full strength: " + std::string(last.message()));
  }
  return last.ok() ? Status::Unavailable("client deadline exceeded") : last;
}

Status Chain::RunWrite(Op op) {
  op.req_id = next_req_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto deadline = Clock::now() + std::chrono::milliseconds(options_.client_timeout_ms);
  uint64_t attempt_ms = std::min<uint64_t>(options_.client_retry_base_ms,
                                           std::max<uint64_t>(options_.client_timeout_ms, 1));
  Status last = Status::Unavailable("no attempt made");
  while (true) {
    Replica* h = nullptr;
    Replica::WriteTicket ticket;
    {
      // Admission happens under the (shared) recovery gate; the wait for the
      // tail acknowledgment happens outside it so recovery can proceed while
      // clients are parked.
      std::shared_lock<std::shared_mutex> g(gate_);
      h = head();
      if (h != nullptr) {
        ticket = h->AdmitWrite(op);
      }
    }
    if (h == nullptr) {
      last = Status::Unavailable("no head");
    } else if (!ticket.admitted) {
      if (ticket.status.code() != StatusCode::kUnavailable) {
        return ticket.status;  // Definitive local rejection (e.g. NotFound).
      }
      last = ticket.status;
    } else {
      // Admitted (or recognized as a retry of an already-executed request).
      // Wait one bounded attempt; on timeout, loop to re-admit at whatever
      // head the chain has by then — the request id makes that safe.
      const uint64_t wait = std::min(attempt_ms, std::max<uint64_t>(MsUntil(deadline), 1));
      last = h->WaitWriteFor(ticket, wait);
      if (last.ok()) {
        return last;
      }
    }
    if (MsUntil(deadline) == 0) {
      return DeadlineStatus(last);
    }
    if (h == nullptr || !ticket.admitted) {
      // Nothing is in flight for us; back off briefly before re-probing.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    attempt_ms = std::min<uint64_t>(attempt_ms * 2, options_.client_timeout_ms);
  }
}

Status Chain::Upsert(uint64_t key, std::string value) {
  Op op;
  op.kind = OpKind::kUpsert;
  op.pairs.push_back({key, std::move(value)});
  return RunWrite(std::move(op));
}

Status Chain::Delete(uint64_t key) {
  Op op;
  op.kind = OpKind::kDelete;
  op.pairs.push_back({key, ""});
  return RunWrite(std::move(op));
}

Status Chain::MultiUpsert(std::vector<KvPair> pairs) {
  Op op;
  op.kind = OpKind::kMultiUpsert;
  op.pairs = std::move(pairs);
  return RunWrite(std::move(op));
}

Result<std::string> Chain::Read(uint64_t key) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(options_.client_timeout_ms);
  uint64_t attempt_ms = std::min<uint64_t>(options_.client_retry_base_ms,
                                           std::max<uint64_t>(options_.client_timeout_ms, 1));
  Status last = Status::Unavailable("no attempt made");
  while (true) {
    Replica* h = nullptr;
    {
      std::shared_lock<std::shared_mutex> g(gate_);
      h = head();
    }
    if (h != nullptr) {
      const uint64_t wait = std::min(attempt_ms, std::max<uint64_t>(MsUntil(deadline), 1));
      Result<std::string> res = h->ClientRead(key, wait);
      if (res.ok() || res.status().code() == StatusCode::kNotFound) {
        return res;
      }
      last = res.status();
    } else {
      last = Status::Unavailable("no head");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (MsUntil(deadline) == 0) {
      return DeadlineStatus(last);
    }
    attempt_ms = std::min<uint64_t>(attempt_ms * 2, options_.client_timeout_ms);
  }
}

Result<std::string> Chain::ReadStale(uint64_t key, uint64_t* applied_out) {
  std::shared_lock<std::shared_mutex> g(gate_);
  const View v = membership_->current();
  if (v.nodes.empty()) {
    return Status::Unavailable("empty view");
  }
  // Round-robin over the current view; skip dead replicas and fall through
  // to the next one, so a mid-failover read degrades to fewer servers
  // rather than an error.
  const size_t n = v.nodes.size();
  const size_t first = next_stale_.fetch_add(1, std::memory_order_relaxed) % n;
  Status last = Status::Unavailable("no live replica");
  for (size_t k = 0; k < n; ++k) {
    Replica* r = replica_by_id(v.nodes[(first + k) % n]);
    if (r == nullptr || !r->alive()) {
      continue;
    }
    Result<std::string> res = r->StaleRead(key, applied_out);
    if (res.ok() || res.status().code() == StatusCode::kNotFound) {
      return res;
    }
    last = res.status();
  }
  return last;
}

// --- Failure handling --------------------------------------------------------------

Status Chain::RepairLocked(uint64_t failed, const View& before) {
  const bool was_head = before.head() == failed;
  const uint64_t pred = before.PredecessorOf(failed);
  const uint64_t succ = before.SuccessorOf(failed);
  BroadcastView();

  if (was_head) {
    const View now = membership_->current();
    Replica* new_head = replica_by_id(now.head());
    if (new_head == nullptr) {
      return Status::Unavailable("chain empty");
    }
    KAMINO_RETURN_IF_ERROR(new_head->PromoteToHead());
  } else if (pred != 0 && succ != 0) {
    // Middle failure: the successor pulls anything the dead node swallowed
    // out of the predecessor's in-flight queue.
    Replica* s = replica_by_id(succ);
    if (s != nullptr) {
      KAMINO_RETURN_IF_ERROR(s->RequestReplay(pred));
    }
  }
  // Tail failure: UpdateView already made the new tail re-acknowledge its
  // progress to the head.
  return Status::Ok();
}

void Chain::RepairWorker() {
  while (true) {
    RepairTask task;
    {
      std::unique_lock<std::mutex> lk(repair_mu_);
      repair_cv_.wait(lk, [&] { return repair_stop_ || !repair_queue_.empty(); });
      if (repair_queue_.empty()) {
        return;  // Stop requested and nothing left to do.
      }
      task = std::move(repair_queue_.front());
      repair_queue_.pop_front();
    }
    std::unique_lock<std::shared_mutex> gate(gate_);
    Replica* victim = replica_by_id(task.failed);
    if (victim != nullptr) {
      // Fence: the suspect may be partitioned rather than dead. Taking it off
      // the network makes "suspected" equivalent to "failed" before re-wiring.
      victim->CrashStop();
    }
    (void)RepairLocked(task.failed, task.old_view);
  }
}

Status Chain::KillReplica(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* victim = replica_by_id(node_id);
  if (victim == nullptr) {
    return Status::NotFound("no such replica");
  }
  const View before = membership_->current();

  victim->CrashStop();
  membership_->ReportFailure(node_id);
  return RepairLocked(node_id, before);
}

Status Chain::RebootReplica(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* victim = replica_by_id(node_id);
  if (victim == nullptr) {
    return Status::NotFound("no such replica");
  }
  return victim->QuickReboot();
}

Result<uint64_t> Chain::PrepareJoiningReplica() {
  std::unique_lock<std::shared_mutex> gate(gate_);
  auto replica = std::make_unique<Replica>(MakeReplicaOptions(next_node_id_));
  const uint64_t id = next_node_id_++;
  // Materialize the pool now so crash-point observers can watch the whole
  // state transfer, including its very first persist.
  KAMINO_RETURN_IF_ERROR(replica->EnsureMainPool());
  replicas_.push_back(std::move(replica));
  return id;
}

Status Chain::CompleteJoin(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* r = replica_by_id(node_id);
  if (r == nullptr) {
    return Status::NotFound("no such replica");
  }
  if (!membership_->current().Contains(node_id)) {
    membership_->AddTail(node_id);
    BroadcastView();
  }
  return r->JoinAsTail();
}

Status Chain::RetryJoin(uint64_t node_id) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  Replica* r = replica_by_id(node_id);
  if (r == nullptr) {
    return Status::NotFound("no such replica");
  }
  return r->RejoinAsTail();
}

Status Chain::AddReplica() {
  Result<uint64_t> id = PrepareJoiningReplica();
  if (!id.ok()) {
    return id.status();
  }
  return CompleteJoin(*id);
}

Status Chain::Quiesce(uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      // Shared-lock each poll so the detector's repair worker (which holds
      // gate_ exclusively while re-wiring replicas and swapping engines)
      // cannot mutate replicas_ or a replica's manager under our feet. The
      // lock is dropped across the sleep so repair is never stalled for the
      // whole quiesce timeout.
      std::shared_lock<std::shared_mutex> g(gate_);
      const View v = membership_->current();
      bool drained = true;
      for (uint64_t id : v.nodes) {
        Replica* r = replica_by_id(id);
        if (r != nullptr && r->alive() && r->in_flight_size() != 0) {
          drained = false;
          break;
        }
      }
      if (drained) {
        Replica* h = replica_by_id(v.head());
        if (h != nullptr && h->manager() != nullptr) {
          h->manager()->WaitIdle();
        }
        return Status::Ok();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::Unavailable("quiesce timeout");
}

}  // namespace kamino::chain
