// The chain replica's persistent root object, shared between the replica
// itself and offline tooling (kamino_inspect decodes crashed replica pools).
//
// Layout invariants:
//   - `magic` identifies the root as a chain anchor (vs a KV tree root or a
//     shard anchor) so tools can decode it without out-of-band knowledge.
//   - `view_cursor` is the durable promotion cursor (DESIGN.md §13): an
//     8-byte, non-transactional field persisted at the dedicated site
//     `chain/promote-cursor`, mirroring the log header's `reconcile_cursor`.
//     Trust rule: a Kamino head's engine-local recovery may roll back from
//     the local backup iff the durable cursor reads kViewCursorHeadComplete —
//     any other value means the backup was never fully built (promotion
//     crashed mid-flight) and recovery must go back through the chain
//     (neighbour resolution + backup re-sync) instead.
//   - `ring` holds applied-op markers: each operation's transaction writes
//     its op id into ring[op_id % kMarkerRing]; recovery takes the ring
//     maximum as the applied watermark. A ring (rather than one counter)
//     keeps successive operations from becoming dependent transactions on
//     the marker object — slot reuse is kMarkerRing operations apart.

#ifndef SRC_CHAIN_ANCHOR_H_
#define SRC_CHAIN_ANCHOR_H_

#include <cstdint>

namespace kamino::chain {

inline constexpr uint64_t kChainAnchorMagic = 0x4B414D494E4F4341ull;  // "KAMINOCA"

// Durable promotion-cursor states. Monotone within one promotion:
// (anything) -> kViewCursorPromoting -> kViewCursorHeadComplete.
//   kViewCursorNone         — never completed a head takeover on this heap
//                             (middles/tails carry this); backup untrusted.
//   kViewCursorPromoting    — a promotion started and has not durably
//                             finished; the local backup may be garbage.
//   kViewCursorHeadComplete — the head's backup was fully built and synced;
//                             engine-local backup recovery is sound.
inline constexpr uint64_t kViewCursorNone = 0;
inline constexpr uint64_t kViewCursorPromoting = 1;
inline constexpr uint64_t kViewCursorHeadComplete = 2;

inline constexpr uint64_t kMarkerRing = 1024;

struct ChainAnchor {
  uint64_t magic;        // kChainAnchorMagic.
  uint64_t view_cursor;  // kViewCursor* — see trust rule above.
  uint64_t tree_anchor;  // The KV B+Tree anchor.
  uint64_t ring[kMarkerRing];
};

inline const char* ViewCursorName(uint64_t cursor) {
  switch (cursor) {
    case kViewCursorNone:
      return "none (never head; backup untrusted)";
    case kViewCursorPromoting:
      return "promoting (takeover in flight; backup untrusted)";
    case kViewCursorHeadComplete:
      return "head-complete (backup fully built; trusted)";
  }
  return "? (corrupt)";
}

}  // namespace kamino::chain

#endif  // SRC_CHAIN_ANCHOR_H_
