// Chain orchestrator: builds a replicated KV chain (traditional chain
// replication, or Kamino-Tx-Chain per paper §5), exposes the client API, and
// drives failure injection + repair for tests.
//
// Geometry (Table 1): a traditional chain tolerating f failures has f+1
// replicas, each paying a data copy (undo log) in the critical path;
// Kamino-Tx-Chain has f+2 replicas performing in-place updates, with a
// backup only at the head.

#ifndef SRC_CHAIN_CHAIN_H_
#define SRC_CHAIN_CHAIN_H_

#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/chain/membership.h"
#include "src/chain/replica.h"
#include "src/net/network.h"

namespace kamino::chain {

struct ChainOptions {
  bool kamino = true;       // Kamino-Tx-Chain vs traditional chain.
  int f = 2;                // Failures to tolerate.
  double head_alpha = 1.0;  // Head backup budget (Kamino only).
  uint64_t pool_size = 64ull << 20;
  uint64_t log_region_size = 8ull << 20;
  uint32_t one_way_latency_us = 10;  // The paper's l_n.
  uint32_t flush_latency_ns = 0;     // Emulated NVM write-back cost per line.
  uint64_t client_timeout_ms = 10'000;
};

class Chain {
 public:
  static Result<std::unique_ptr<Chain>> Create(const ChainOptions& options);
  ~Chain();

  // --- Client API (linearizable; writes commit at the tail) ----------------
  Status Upsert(uint64_t key, std::string value);
  Status Delete(uint64_t key);
  // One atomic multi-object transaction across the chain.
  Status MultiUpsert(std::vector<KvPair> pairs);
  Result<std::string> Read(uint64_t key);

  // --- Failure injection / repair ------------------------------------------
  // Fail-stop `node_id`: removes it from the view; promotes a new head if
  // needed; re-wires replay around the gap.
  Status KillReplica(uint64_t node_id);
  // Quick reboot (paper §5.3). Pass `crash_mid_apply` to make the victim die
  // in the middle of applying its next operation first.
  Status RebootReplica(uint64_t node_id);
  // Repairs the chain back to full strength with a fresh tail.
  Status AddReplica();

  // Blocks until every admitted operation is committed and cleaned up.
  Status Quiesce(uint64_t timeout_ms = 10'000);

  // --- Introspection ---------------------------------------------------------
  size_t num_replicas() const { return replicas_.size(); }
  Replica* head();
  Replica* replica_by_id(uint64_t node_id);
  const View current_view() const { return membership_->current(); }
  uint64_t total_nvm_bytes() const;
  net::Network* network() { return network_.get(); }

 private:
  explicit Chain(const ChainOptions& options);

  Status Init();
  void BroadcastView();

  ChainOptions options_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<MembershipManager> membership_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  uint64_t next_node_id_ = 1;

  // Writes take this shared; recovery windows take it exclusive so the
  // neighbour-fetch protocol sees a stable object space (see replica.h).
  std::shared_mutex gate_;
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_CHAIN_H_
