// Chain orchestrator: builds a replicated KV chain (traditional chain
// replication, or Kamino-Tx-Chain per paper §5), exposes the client API, and
// drives failure injection + repair.
//
// Geometry (Table 1): a traditional chain tolerating f failures has f+1
// replicas, each paying a data copy (undo log) in the critical path;
// Kamino-Tx-Chain has f+2 replicas performing in-place updates, with a
// backup only at the head.
//
// Failure handling has two entry points that converge on the same repair:
//   - KillReplica(): test/orchestrator-driven fail-stop injection.
//   - The replicas' heartbeat failure detector (ChainOptions::
//     heartbeat_interval_ms > 0): a silent neighbour is reported to the
//     MembershipManager, which excises it and notifies this orchestrator;
//     a background repair thread fences the suspect and re-wires the chain.

#ifndef SRC_CHAIN_CHAIN_H_
#define SRC_CHAIN_CHAIN_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/chain/membership.h"
#include "src/chain/replica.h"
#include "src/net/network.h"

namespace kamino::chain {

struct ChainOptions {
  bool kamino = true;       // Kamino-Tx-Chain vs traditional chain.
  int f = 2;                // Failures to tolerate.
  double head_alpha = 1.0;  // Head backup budget (Kamino only).
  uint64_t pool_size = 64ull << 20;
  uint64_t log_region_size = 8ull << 20;
  uint32_t one_way_latency_us = 10;  // The paper's l_n.
  uint32_t flush_latency_ns = 0;     // Emulated NVM write-back cost per line.
  // Overall client deadline: a call that cannot complete within this returns
  // a typed error (kDegraded when the chain is below full strength,
  // kUnavailable otherwise) instead of hanging.
  uint64_t client_timeout_ms = 10'000;
  // Per-attempt wait before a client write/read retries (doubles up to the
  // overall deadline). Retries are exactly-once: each call carries one
  // request id and the head dedups re-executions.
  uint64_t client_retry_base_ms = 500;
  // Failure detector (per replica). 0 keeps it off: failures must then be
  // injected via KillReplica.
  uint32_t heartbeat_interval_ms = 0;
  uint32_t suspicion_timeout_ms = 500;
  // In-flight op retransmission backoff (see ReplicaOptions).
  uint32_t retx_base_ms = 50;
  uint32_t retx_cap_ms = 800;
  uint64_t fault_seed = 0x6b616d696e6f;  // Seed for injected network faults.
};

// Aggregate robustness counters: simulated-network totals plus the chain
// protocol's recovery machinery (summed over all replicas ever created).
struct ChainNetworkStats {
  net::EndpointStats net;
  uint64_t retransmits = 0;
  uint64_t state_req_retransmits = 0;
  uint64_t dedup_dropped = 0;
  uint64_t regen_acks = 0;
  uint64_t reorder_buffered = 0;
  uint64_t req_dedup_hits = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t suspicions_reported = 0;
  uint64_t suspicion_view_changes = 0;
};

class Chain {
 public:
  static Result<std::unique_ptr<Chain>> Create(const ChainOptions& options);
  ~Chain();

  // --- Client API (linearizable; writes commit at the tail) ----------------
  // Writes retry on timeout with the same request id until the overall
  // client deadline; the chain executes each request at most once.
  Status Upsert(uint64_t key, std::string value);
  Status Delete(uint64_t key);
  // One atomic multi-object transaction across the chain.
  Status MultiUpsert(std::vector<KvPair> pairs);
  Result<std::string> Read(uint64_t key);
  // Stale-bounded read: answered by ANY live replica of the current view at
  // its applied epoch, round-robined across the chain — read throughput
  // scales with chain length instead of funnelling every read through the
  // head->tail hop (DESIGN.md §12). *applied_out receives the serving
  // replica's applied op watermark; see Replica::StaleRead for the exact
  // consistency contract (read-admitted, propagation-lag bounded).
  Result<std::string> ReadStale(uint64_t key, uint64_t* applied_out = nullptr);

  // --- Failure injection / repair ------------------------------------------
  // Fail-stop `node_id`: removes it from the view; promotes a new head if
  // needed; re-wires replay around the gap.
  Status KillReplica(uint64_t node_id);
  // Quick reboot (paper §5.3): the victim's volatile state and unflushed NVM
  // lines are dropped, then it rejoins, resolves incomplete transactions
  // against a neighbour, and asks its predecessor for a replay. To exercise
  // a power failure in the middle of an apply, arm the fault first via
  // replica_by_id(id)->ArmCrashDuringNextApply() and drive one more write
  // before calling this.
  Status RebootReplica(uint64_t node_id);
  // Repairs the chain back to full strength with a fresh tail
  // (= PrepareJoiningReplica + CompleteJoin).
  Status AddReplica();
  // Split-phase join, for crash-point enumeration: Prepare creates the
  // joining replica and its pool (so persistence observers can be installed
  // before any transfer byte moves) without touching membership; CompleteJoin
  // adds it to the view (first call only) and runs the state transfer;
  // RetryJoin power-cycles a join that lost power mid-transfer and re-runs
  // it from scratch.
  Result<uint64_t> PrepareJoiningReplica();
  Status CompleteJoin(uint64_t node_id);
  Status RetryJoin(uint64_t node_id);

  // Blocks until every admitted operation is committed and cleaned up, or
  // the deadline passes (kUnavailable). A partitioned/stuck replica makes
  // this time out rather than hang.
  Status Quiesce(uint64_t timeout_ms = 10'000);

  // --- Introspection ---------------------------------------------------------
  size_t num_replicas() const { return replicas_.size(); }
  Replica* head();
  Replica* replica_by_id(uint64_t node_id);
  const View current_view() const { return membership_->current(); }
  uint64_t total_nvm_bytes() const;
  net::Network* network() { return network_.get(); }
  MembershipManager* membership() { return membership_.get(); }
  ChainNetworkStats NetworkStats();

 private:
  explicit Chain(const ChainOptions& options);

  Status Init();
  void BroadcastView();
  ReplicaOptions MakeReplicaOptions(uint64_t node_id) const;
  // Re-wires the chain after `failed` left the view (which `before` still
  // contains). Caller holds gate_ exclusive and has already fenced the node.
  Status RepairLocked(uint64_t failed, const View& before);
  void RepairWorker();

  // Client retry driver: (re-)admits `op` at the current head until acked,
  // definitively rejected, or the overall deadline passes.
  Status RunWrite(Op op);
  Status DeadlineStatus(const Status& last) const;

  ChainOptions options_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<MembershipManager> membership_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  uint64_t next_node_id_ = 1;
  std::atomic<uint64_t> next_req_id_{0};
  std::atomic<uint64_t> next_stale_{0};  // ReadStale round-robin cursor.

  // Detector-driven repair queue (fed by the membership listener from
  // replica threads; drained by repair_thread_).
  struct RepairTask {
    uint64_t failed = 0;
    View old_view;
  };
  std::mutex repair_mu_;
  std::condition_variable repair_cv_;
  std::deque<RepairTask> repair_queue_;
  bool repair_stop_ = false;
  std::thread repair_thread_;

  // Writes take this shared; recovery windows take it exclusive so the
  // neighbour-fetch protocol sees a stable object space (see replica.h).
  std::shared_mutex gate_;
};

}  // namespace kamino::chain

#endif  // SRC_CHAIN_CHAIN_H_
