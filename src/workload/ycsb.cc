#include "src/workload/ycsb.h"

namespace kamino::workload {

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "YCSB-A";
    case YcsbWorkload::kB:
      return "YCSB-B";
    case YcsbWorkload::kC:
      return "YCSB-C";
    case YcsbWorkload::kD:
      return "YCSB-D";
    case YcsbWorkload::kF:
      return "YCSB-F";
  }
  return "YCSB-?";
}

YcsbSpec YcsbSpec::For(YcsbWorkload w) {
  YcsbSpec s;
  switch (w) {
    case YcsbWorkload::kA:
      s.read = 0.5;
      s.update = 0.5;
      break;
    case YcsbWorkload::kB:
      s.read = 0.95;
      s.update = 0.05;
      break;
    case YcsbWorkload::kC:
      s.read = 1.0;
      break;
    case YcsbWorkload::kD:
      s.read = 0.95;
      s.insert = 0.05;
      s.latest_reads = true;
      break;
    case YcsbWorkload::kF:
      s.read = 0.5;
      s.rmw = 0.5;
      break;
  }
  return s;
}

std::string YcsbValue(uint64_t key, size_t size) {
  std::string v(size, '\0');
  uint64_t x = key * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < size; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v[i] = static_cast<char>('a' + (x % 26));
  }
  return v;
}

}  // namespace kamino::workload
