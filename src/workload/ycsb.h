// YCSB workload generator — the paper's Table 3 mixes.
//
//   Workload   Read  Update  Insert  Read&Update (RMW)
//   A          50    50      -       -
//   B          95    5       -       -
//   C          100   -       -       -
//   D          95    -       5       -        (reads follow "latest")
//   F          50    -       -       50
//
// The paper runs these against 10M 1KB records; record count and value size
// are parameters here so benchmarks can scale to the host.

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <atomic>
#include <string>

#include "src/workload/zipfian.h"

namespace kamino::workload {

enum class YcsbOp {
  kRead,
  kUpdate,
  kInsert,
  kReadModifyWrite,
};

enum class YcsbWorkload { kA, kB, kC, kD, kF };

const char* YcsbWorkloadName(YcsbWorkload w);

struct YcsbSpec {
  double read = 0;
  double update = 0;
  double insert = 0;
  double rmw = 0;
  bool latest_reads = false;  // Workload D.

  static YcsbSpec For(YcsbWorkload w);
};

// One generator per client thread; `shared_count` tracks the growing
// keyspace for workload D's inserts across threads.
class YcsbGenerator {
 public:
  YcsbGenerator(YcsbWorkload workload, uint64_t initial_records,
                std::atomic<uint64_t>* shared_count, uint64_t seed)
      : spec_(YcsbSpec::For(workload)),
        shared_count_(shared_count),
        rng_(seed),
        zipf_(initial_records) {}

  struct Request {
    YcsbOp op;
    uint64_t key;
  };

  Request Next() {
    Request r;
    const double dice = rng_.NextDouble();
    const uint64_t count = shared_count_->load(std::memory_order_relaxed);
    if (dice < spec_.read) {
      r.op = YcsbOp::kRead;
      r.key = spec_.latest_reads ? latest_.Next(rng_, count) : zipf_.Next(rng_);
    } else if (dice < spec_.read + spec_.update) {
      r.op = YcsbOp::kUpdate;
      r.key = zipf_.Next(rng_);
    } else if (dice < spec_.read + spec_.update + spec_.insert) {
      r.op = YcsbOp::kInsert;
      r.key = shared_count_->fetch_add(1, std::memory_order_relaxed);
    } else {
      r.op = YcsbOp::kReadModifyWrite;
      r.key = zipf_.Next(rng_);
    }
    return r;
  }

  Xoshiro256& rng() { return rng_; }

 private:
  YcsbSpec spec_;
  std::atomic<uint64_t>* shared_count_;
  Xoshiro256 rng_;
  ScrambledZipfian zipf_;
  FastLatestChooser latest_;
};

// Deterministic value payload of `size` bytes for `key`.
std::string YcsbValue(uint64_t key, size_t size);

}  // namespace kamino::workload

#endif  // SRC_WORKLOAD_YCSB_H_
