// TPC-C-lite: a scaled-down TPC-C benchmark over the transactional B+Trees,
// standing in for the paper's "TPCC benchmark suite against MySQL" (Figure 1)
// and the TPC-C latency bar of Figure 13.
//
// Implements the five standard transaction profiles with the standard mix
// (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%)
// over eight tables, each a persistent B+Tree on the same transactional
// heap, so a single NewOrder is one multi-tree, multi-object atomic
// transaction — exactly the shape whose logging cost Figure 1 measures.

#ifndef SRC_WORKLOAD_TPCC_LITE_H_
#define SRC_WORKLOAD_TPCC_LITE_H_

#include <atomic>
#include <memory>

#include "src/common/random.h"
#include "src/pds/bplus_tree.h"
#include "src/txn/tx_manager.h"

namespace kamino::workload {

class TpccLite {
 public:
  struct Options {
    uint32_t warehouses = 1;
    uint32_t districts = 10;       // Per warehouse.
    uint32_t customers = 300;      // Per district.
    uint32_t items = 1000;
    uint32_t max_order_lines = 10; // 5..max per NewOrder.
  };

  enum class TxKind { kNewOrder, kPayment, kOrderStatus, kDelivery, kStockLevel };

  static Result<std::unique_ptr<TpccLite>> Create(txn::TxManager* mgr,
                                                  const Options& options);

  // Populates items / warehouses / districts / customers / stock.
  Status Load();

  // Standard mix: 45 / 43 / 4 / 4 / 4.
  TxKind NextKind(Xoshiro256& rng) const;

  // Executes one transaction of the given profile with random inputs.
  Status RunTransaction(TxKind kind, Xoshiro256& rng);

  // Convenience: NextKind + RunTransaction.
  Status RunOne(Xoshiro256& rng) { return RunTransaction(NextKind(rng), rng); }

  struct Stats {
    uint64_t new_order = 0;
    uint64_t payment = 0;
    uint64_t order_status = 0;
    uint64_t delivery = 0;
    uint64_t stock_level = 0;
    uint64_t aborted = 0;
  };
  Stats stats() const;

  txn::TxManager* manager() { return mgr_; }

 private:
  // Fixed-size records packed into tree values.
  struct ItemRec {
    double price;
  };
  struct WarehouseRec {
    double ytd;
  };
  struct DistrictRec {
    double ytd;
    uint64_t next_o_id;
  };
  struct CustomerRec {
    double balance;
    double ytd_payment;
    uint64_t payment_cnt;
    uint64_t delivery_cnt;
  };
  struct StockRec {
    uint64_t quantity;
    double ytd;
    uint64_t order_cnt;
  };
  struct OrderRec {
    uint64_t c_id;
    uint64_t ol_cnt;
    uint64_t delivered;
  };
  struct OrderLineRec {
    uint64_t i_id;
    uint64_t qty;
    double amount;
  };
  struct NewOrderRec {
    uint64_t o_id;
  };

  explicit TpccLite(txn::TxManager* mgr, const Options& options)
      : mgr_(mgr), options_(options) {}

  Status Build();

  // Key composition: warehouse | district | entity (| line).
  static uint64_t WKey(uint64_t w) { return w; }
  static uint64_t DKey(uint64_t w, uint64_t d) { return (w << 8) | d; }
  static uint64_t CKey(uint64_t w, uint64_t d, uint64_t c) {
    return (w << 40) | (d << 32) | c;
  }
  static uint64_t SKey(uint64_t w, uint64_t i) { return (w << 40) | i; }
  static uint64_t OKey(uint64_t w, uint64_t d, uint64_t o) {
    return (w << 40) | (d << 32) | o;
  }
  static uint64_t OlKey(uint64_t w, uint64_t d, uint64_t o, uint64_t ol) {
    return (w << 48) | (d << 40) | (o << 8) | ol;
  }

  Status NewOrder(Xoshiro256& rng);
  Status Payment(Xoshiro256& rng);
  Status OrderStatus(Xoshiro256& rng);
  Status Delivery(Xoshiro256& rng);
  Status StockLevel(Xoshiro256& rng);

  txn::TxManager* mgr_;
  Options options_;

  // Per-profile counters; clients run on multiple threads.
  std::atomic<uint64_t> new_order_count_{0};
  std::atomic<uint64_t> payment_count_{0};
  std::atomic<uint64_t> order_status_count_{0};
  std::atomic<uint64_t> delivery_count_{0};
  std::atomic<uint64_t> stock_level_count_{0};
  std::atomic<uint64_t> aborted_count_{0};

  std::unique_ptr<pds::BPlusTree> item_;
  std::unique_ptr<pds::BPlusTree> warehouse_;
  std::unique_ptr<pds::BPlusTree> district_;
  std::unique_ptr<pds::BPlusTree> customer_;
  std::unique_ptr<pds::BPlusTree> stock_;
  std::unique_ptr<pds::BPlusTree> orders_;
  std::unique_ptr<pds::BPlusTree> order_line_;
  std::unique_ptr<pds::BPlusTree> new_order_;
};

}  // namespace kamino::workload

#endif  // SRC_WORKLOAD_TPCC_LITE_H_
