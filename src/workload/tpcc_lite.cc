#include "src/workload/tpcc_lite.h"

#include <cstring>

namespace kamino::workload {

namespace {

template <typename T>
std::string Pack(const T& rec) {
  return std::string(reinterpret_cast<const char*>(&rec), sizeof(T));
}

template <typename T>
T Unpack(std::string_view bytes) {
  T rec{};
  std::memcpy(&rec, bytes.data(), std::min(bytes.size(), sizeof(T)));
  return rec;
}

// In-place record mutation for ReadModifyWrite bodies.
template <typename T, typename Fn>
auto Mutator(Fn&& fn) {
  return [fn = std::forward<Fn>(fn)](std::string& bytes) {
    T rec = Unpack<T>(bytes);
    fn(rec);
    bytes = Pack(rec);
  };
}

}  // namespace

Result<std::unique_ptr<TpccLite>> TpccLite::Create(txn::TxManager* mgr,
                                                   const Options& options) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  auto tpcc = std::unique_ptr<TpccLite>(new TpccLite(mgr, options));
  Status st = tpcc->Build();
  if (!st.ok()) {
    return st;
  }
  return tpcc;
}

Status TpccLite::Build() {
  auto make = [&](std::unique_ptr<pds::BPlusTree>* out) -> Status {
    Result<std::unique_ptr<pds::BPlusTree>> t = pds::BPlusTree::Create(mgr_);
    if (!t.ok()) {
      return t.status();
    }
    *out = std::move(*t);
    return Status::Ok();
  };
  KAMINO_RETURN_IF_ERROR(make(&item_));
  KAMINO_RETURN_IF_ERROR(make(&warehouse_));
  KAMINO_RETURN_IF_ERROR(make(&district_));
  KAMINO_RETURN_IF_ERROR(make(&customer_));
  KAMINO_RETURN_IF_ERROR(make(&stock_));
  KAMINO_RETURN_IF_ERROR(make(&orders_));
  KAMINO_RETURN_IF_ERROR(make(&order_line_));
  KAMINO_RETURN_IF_ERROR(make(&new_order_));
  return Status::Ok();
}

Status TpccLite::Load() {
  for (uint64_t i = 0; i < options_.items; ++i) {
    ItemRec rec{1.0 + static_cast<double>(i % 100)};
    KAMINO_RETURN_IF_ERROR(item_->Upsert(i, Pack(rec)));
  }
  for (uint64_t w = 0; w < options_.warehouses; ++w) {
    KAMINO_RETURN_IF_ERROR(warehouse_->Upsert(WKey(w), Pack(WarehouseRec{0})));
    for (uint64_t i = 0; i < options_.items; ++i) {
      KAMINO_RETURN_IF_ERROR(stock_->Upsert(SKey(w, i), Pack(StockRec{100, 0, 0})));
    }
    for (uint64_t d = 0; d < options_.districts; ++d) {
      KAMINO_RETURN_IF_ERROR(district_->Upsert(DKey(w, d), Pack(DistrictRec{0, 1})));
      for (uint64_t c = 0; c < options_.customers; ++c) {
        KAMINO_RETURN_IF_ERROR(
            customer_->Upsert(CKey(w, d, c), Pack(CustomerRec{1000.0, 0, 0, 0})));
      }
    }
  }
  mgr_->WaitIdle();
  return Status::Ok();
}

TpccLite::TxKind TpccLite::NextKind(Xoshiro256& rng) const {
  const double dice = rng.NextDouble();
  if (dice < 0.45) {
    return TxKind::kNewOrder;
  }
  if (dice < 0.88) {
    return TxKind::kPayment;
  }
  if (dice < 0.92) {
    return TxKind::kOrderStatus;
  }
  if (dice < 0.96) {
    return TxKind::kDelivery;
  }
  return TxKind::kStockLevel;
}

TpccLite::Stats TpccLite::stats() const {
  Stats s;
  s.new_order = new_order_count_.load(std::memory_order_relaxed);
  s.payment = payment_count_.load(std::memory_order_relaxed);
  s.order_status = order_status_count_.load(std::memory_order_relaxed);
  s.delivery = delivery_count_.load(std::memory_order_relaxed);
  s.stock_level = stock_level_count_.load(std::memory_order_relaxed);
  s.aborted = aborted_count_.load(std::memory_order_relaxed);
  return s;
}

Status TpccLite::RunTransaction(TxKind kind, Xoshiro256& rng) {
  Status st;
  switch (kind) {
    case TxKind::kNewOrder:
      st = NewOrder(rng);
      if (st.ok()) {
        new_order_count_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case TxKind::kPayment:
      st = Payment(rng);
      if (st.ok()) {
        payment_count_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case TxKind::kOrderStatus:
      st = OrderStatus(rng);
      if (st.ok()) {
        order_status_count_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case TxKind::kDelivery:
      st = Delivery(rng);
      if (st.ok()) {
        delivery_count_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case TxKind::kStockLevel:
      st = StockLevel(rng);
      if (st.ok()) {
        stock_level_count_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
  if (!st.ok()) {
    aborted_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

Status TpccLite::NewOrder(Xoshiro256& rng) {
  const uint64_t w = rng.NextBounded(options_.warehouses);
  const uint64_t d = rng.NextBounded(options_.districts);
  const uint64_t c = rng.NextBounded(options_.customers);
  const uint64_t n_lines = 5 + rng.NextBounded(options_.max_order_lines - 4);
  std::vector<uint64_t> line_items(n_lines);
  std::vector<uint64_t> line_qtys(n_lines);
  for (uint64_t i = 0; i < n_lines; ++i) {
    line_items[i] = rng.NextBounded(options_.items);
    line_qtys[i] = 1 + rng.NextBounded(10);
  }

  // Fixed guard order across transaction profiles prevents guard deadlocks.
  auto g1 = district_->LockShared();
  auto g2 = stock_->LockShared();
  auto g3 = orders_->LockExclusive();
  auto g4 = order_line_->LockExclusive();
  auto g5 = new_order_->LockExclusive();

  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    // District hands out the order id (write intent first, then read —
    // the supported RMW pattern).
    uint64_t o_id = 0;
    KAMINO_RETURN_IF_ERROR(district_->ReadModifyWriteInTx(
        tx, DKey(w, d), Mutator<DistrictRec>([&](DistrictRec& rec) {
          o_id = rec.next_o_id++;
        })));

    double total = 0;
    for (uint64_t i = 0; i < n_lines; ++i) {
      Result<std::string> item_bytes = item_->GetInTx(tx, line_items[i]);
      if (!item_bytes.ok()) {
        return item_bytes.status();
      }
      const ItemRec item = Unpack<ItemRec>(*item_bytes);
      const double amount = item.price * static_cast<double>(line_qtys[i]);
      total += amount;

      KAMINO_RETURN_IF_ERROR(stock_->ReadModifyWriteInTx(
          tx, SKey(w, line_items[i]), Mutator<StockRec>([&](StockRec& rec) {
            rec.quantity = rec.quantity > line_qtys[i] ? rec.quantity - line_qtys[i]
                                                       : rec.quantity + 91 - line_qtys[i];
            rec.ytd += amount;
            ++rec.order_cnt;
          })));
      KAMINO_RETURN_IF_ERROR(order_line_->InsertInTx(
          tx, OlKey(w, d, o_id, i), Pack(OrderLineRec{line_items[i], line_qtys[i], amount})));
    }
    KAMINO_RETURN_IF_ERROR(
        orders_->InsertInTx(tx, OKey(w, d, o_id), Pack(OrderRec{c, n_lines, 0})));
    KAMINO_RETURN_IF_ERROR(
        new_order_->InsertInTx(tx, OKey(w, d, o_id), Pack(NewOrderRec{o_id})));
    (void)total;
    return Status::Ok();
  });
}

Status TpccLite::Payment(Xoshiro256& rng) {
  const uint64_t w = rng.NextBounded(options_.warehouses);
  const uint64_t d = rng.NextBounded(options_.districts);
  const uint64_t c = rng.NextBounded(options_.customers);
  const double amount = 1.0 + static_cast<double>(rng.NextBounded(5000)) / 100.0;

  auto g1 = warehouse_->LockShared();
  auto g2 = district_->LockShared();
  auto g3 = customer_->LockShared();

  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    KAMINO_RETURN_IF_ERROR(warehouse_->ReadModifyWriteInTx(
        tx, WKey(w), Mutator<WarehouseRec>([&](WarehouseRec& rec) { rec.ytd += amount; })));
    KAMINO_RETURN_IF_ERROR(district_->ReadModifyWriteInTx(
        tx, DKey(w, d), Mutator<DistrictRec>([&](DistrictRec& rec) { rec.ytd += amount; })));
    return customer_->ReadModifyWriteInTx(
        tx, CKey(w, d, c), Mutator<CustomerRec>([&](CustomerRec& rec) {
          rec.balance -= amount;
          rec.ytd_payment += amount;
          ++rec.payment_cnt;
        }));
  });
}

Status TpccLite::OrderStatus(Xoshiro256& rng) {
  const uint64_t w = rng.NextBounded(options_.warehouses);
  const uint64_t d = rng.NextBounded(options_.districts);
  const uint64_t c = rng.NextBounded(options_.customers);

  auto g1 = district_->LockShared();
  auto g2 = customer_->LockShared();
  auto g3 = orders_->LockShared();
  auto g4 = order_line_->LockShared();

  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    Result<std::string> cust = customer_->GetInTx(tx, CKey(w, d, c));
    if (!cust.ok()) {
      return cust.status();
    }
    Result<std::string> dist = district_->GetInTx(tx, DKey(w, d));
    if (!dist.ok()) {
      return dist.status();
    }
    const DistrictRec drec = Unpack<DistrictRec>(*dist);
    if (drec.next_o_id <= 1) {
      return Status::Ok();  // No orders yet.
    }
    const uint64_t o_id = drec.next_o_id - 1;
    Result<std::string> order = orders_->GetInTx(tx, OKey(w, d, o_id));
    if (!order.ok()) {
      return order.status();
    }
    const OrderRec orec = Unpack<OrderRec>(*order);
    for (uint64_t i = 0; i < orec.ol_cnt; ++i) {
      Result<std::string> line = order_line_->GetInTx(tx, OlKey(w, d, o_id, i));
      if (!line.ok()) {
        return line.status();
      }
    }
    return Status::Ok();
  });
}

Status TpccLite::Delivery(Xoshiro256& rng) {
  const uint64_t w = rng.NextBounded(options_.warehouses);
  const uint64_t d = rng.NextBounded(options_.districts);

  auto g1 = customer_->LockShared();
  auto g2 = orders_->LockShared();
  auto g3 = order_line_->LockShared();
  auto g4 = new_order_->LockExclusive();

  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    // Oldest undelivered order in this district. Read without object locks
    // (exclusive guard held; the same transaction deletes from this leaf).
    Result<std::pair<uint64_t, std::string>> oldest =
        new_order_->FirstAtLeastInTx(tx, OKey(w, d, 0));
    if (!oldest.ok()) {
      return oldest.status().code() == StatusCode::kNotFound ? Status::Ok()
                                                             : oldest.status();
    }
    if ((oldest->first >> 32) != ((w << 8) | d)) {
      return Status::Ok();  // Nothing to deliver here.
    }
    const uint64_t key = oldest->first;
    const uint64_t o_id = key & 0xFFFFFFFFull;
    KAMINO_RETURN_IF_ERROR(new_order_->DeleteInTx(tx, key));

    Result<std::string> order = orders_->GetInTx(tx, OKey(w, d, o_id));
    if (!order.ok()) {
      return order.status();
    }
    const OrderRec orec = Unpack<OrderRec>(*order);
    double total = 0;
    for (uint64_t i = 0; i < orec.ol_cnt; ++i) {
      Result<std::string> line = order_line_->GetInTx(tx, OlKey(w, d, o_id, i));
      if (!line.ok()) {
        return line.status();
      }
      total += Unpack<OrderLineRec>(*line).amount;
    }
    return customer_->ReadModifyWriteInTx(
        tx, CKey(w, d, orec.c_id), Mutator<CustomerRec>([&](CustomerRec& rec) {
          rec.balance += total;
          ++rec.delivery_cnt;
        }));
  });
}

Status TpccLite::StockLevel(Xoshiro256& rng) {
  const uint64_t w = rng.NextBounded(options_.warehouses);
  const uint64_t d = rng.NextBounded(options_.districts);
  constexpr uint64_t kThreshold = 50;
  constexpr uint64_t kRecentOrders = 20;

  auto g1 = district_->LockShared();
  auto g2 = stock_->LockShared();
  auto g3 = order_line_->LockShared();

  return mgr_->RunWithRetries([&](txn::Tx& tx) -> Status {
    Result<std::string> dist = district_->GetInTx(tx, DKey(w, d));
    if (!dist.ok()) {
      return dist.status();
    }
    const DistrictRec drec = Unpack<DistrictRec>(*dist);
    const uint64_t last = drec.next_o_id;
    const uint64_t first = last > kRecentOrders ? last - kRecentOrders : 1;
    uint64_t low = 0;
    for (uint64_t o = first; o < last; ++o) {
      // Up to max_order_lines lines per order; missing lines terminate.
      for (uint64_t i = 0; i < options_.max_order_lines; ++i) {
        Result<std::string> line = order_line_->GetInTx(tx, OlKey(w, d, o, i));
        if (!line.ok()) {
          break;
        }
        const OrderLineRec lrec = Unpack<OrderLineRec>(*line);
        Result<std::string> stock = stock_->GetInTx(tx, SKey(w, lrec.i_id));
        if (!stock.ok()) {
          return stock.status();
        }
        if (Unpack<StockRec>(*stock).quantity < kThreshold) {
          ++low;
        }
      }
    }
    (void)low;
    return Status::Ok();
  });
}

}  // namespace kamino::workload
