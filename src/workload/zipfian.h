// Key-choosing distributions used by YCSB (Cooper et al., SoCC'10), which
// the paper's evaluation drives all KV benchmarks with (§7, Table 3).

#ifndef SRC_WORKLOAD_ZIPFIAN_H_
#define SRC_WORKLOAD_ZIPFIAN_H_

#include <cmath>
#include <cstdint>

#include "src/common/random.h"

namespace kamino::workload {

// Standard YCSB Zipfian generator (theta = 0.99 by default), with the usual
// incremental zeta computation. Produces values in [0, n).
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// YCSB's "scrambled" Zipfian: spreads the hot items across the keyspace so
// popularity is skewed but not spatially clustered.
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(uint64_t n, double theta = 0.99) : n_(n), zipf_(n, theta) {}

  uint64_t Next(Xoshiro256& rng) const {
    const uint64_t raw = zipf_.Next(rng);
    return Fnv64(raw) % n_;
  }

 private:
  static uint64_t Fnv64(uint64_t v) {
    uint64_t hash = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
      hash ^= v & 0xFF;
      hash *= 0x100000001B3ull;
      v >>= 8;
    }
    return hash;
  }

  uint64_t n_;
  ZipfianGenerator zipf_;
};

// YCSB's "latest" distribution (workload D): skewed toward the most recently
// inserted keys of a growing keyspace.
class LatestChooser {
 public:
  explicit LatestChooser(double theta = 0.99) : theta_(theta) {}

  // Picks a key in [0, current_count), favouring high (recent) ids.
  uint64_t Next(Xoshiro256& rng, uint64_t current_count) const {
    if (current_count == 0) {
      return 0;
    }
    ZipfianGenerator zipf(current_count, theta_);
    const uint64_t offset = zipf.Next(rng);
    return current_count - 1 - offset;
  }

 private:
  double theta_;
};

// Cheaper latest approximation for hot loops (the exact form rebuilds zeta
// per call as the keyspace grows): exponential recency bias.
class FastLatestChooser {
 public:
  uint64_t Next(Xoshiro256& rng, uint64_t current_count) const {
    if (current_count == 0) {
      return 0;
    }
    // Geometric-ish decay over the most recent ~5% of the keyspace.
    const double span = std::max(1.0, static_cast<double>(current_count) * 0.05);
    const double back = -std::log(1.0 - rng.NextDouble()) * span / 4.0;
    const auto offset = static_cast<uint64_t>(back);
    return offset >= current_count ? 0 : current_count - 1 - offset;
  }
};

}  // namespace kamino::workload

#endif  // SRC_WORKLOAD_ZIPFIAN_H_
