// Transactional key-value store over the persistent B+Tree — the system the
// paper's evaluation drives with YCSB (§7: "we have designed and implemented
// a key-value store that uses a NVML based persistent B+Tree").
//
// Keys are uint64 record ids (YCSB's "user<N>"); values are opaque byte
// strings (1 KB in the paper's runs). Every operation is one transaction on
// the underlying atomicity engine, so swapping `TxManagerOptions::engine`
// re-runs the identical store over Kamino-Tx, undo-logging, CoW or
// no-logging.

#ifndef SRC_KV_KV_STORE_H_
#define SRC_KV_KV_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/pds/bplus_tree.h"
#include "src/txn/tx_manager.h"

namespace kamino::kv {

class KvStore {
 public:
  // Creates a fresh store on `mgr`'s heap and anchors it at the heap root.
  static Result<std::unique_ptr<KvStore>> Create(txn::TxManager* mgr);

  // Reattaches to a store previously anchored at the heap root (the
  // restart/recovery path; run after TxManager::Open).
  static Result<std::unique_ptr<KvStore>> Open(txn::TxManager* mgr);

  // Creates a fresh store WITHOUT touching the heap root: the caller owns the
  // anchor (read it back via anchor()) and its persistence — e.g.
  // shard::ShardedStore roots each shard's tree inside its persistent shard
  // anchor block rather than at the heap root.
  static Result<std::unique_ptr<KvStore>> CreateDetached(txn::TxManager* mgr);

  // Reattaches to a store whose tree header lives at `anchor` (the
  // CreateDetached counterpart of Open).
  static Result<std::unique_ptr<KvStore>> Attach(txn::TxManager* mgr, uint64_t anchor);

  // Offset of the tree header (persistent; stable across re-open).
  uint64_t anchor() const { return tree_->anchor(); }

  // YCSB READ.
  Result<std::string> Read(uint64_t key);
  // YCSB UPDATE (key must exist).
  Status Update(uint64_t key, std::string_view value);
  // Persist-behind UPDATE (LogOptions::epoch_commit, DESIGN.md §8): returns
  // at DRAM-commit; the update may only be acknowledged to the client after
  // TxManager::WaitCommitDurable(*ack). Durable on return when `ack` comes
  // back with ticket 0 (epoch mode off, or the structural retry path ran).
  Status UpdateAsync(uint64_t key, std::string_view value, txn::CommitAck* ack);
  // YCSB INSERT (fails if present).
  Status Insert(uint64_t key, std::string_view value);
  // Insert-or-replace (bulk loads).
  Status Upsert(uint64_t key, std::string_view value);
  // YCSB READ-MODIFY-WRITE: reads the current value, applies `mutate`, and
  // writes the result — all in one transaction, declaring write intent
  // before reading (the supported RMW pattern; see LockManager docs).
  Status ReadModifyWrite(uint64_t key, const std::function<void(std::string&)>& mutate);
  // YCSB SCAN.
  Result<std::vector<std::pair<uint64_t, std::string>>> Scan(uint64_t start, size_t limit);
  Status Delete(uint64_t key);

  // --- Backup-snapshot reads (DESIGN.md §12) -------------------------------
  // Served entirely from the engine's backup copy at the published backup
  // epoch: no transaction, no main-heap lock acquisition, no contention with
  // writers beyond the bounded cut-gate handshake. Results are stale-bounded
  // (transaction-consistent as of the epoch written to *epoch_out, at most
  // the applier lag behind linearizable reads). NotSupported on engines
  // without a readable backup (undo/redo/CoW/none).
  Result<std::string> SnapshotRead(uint64_t key, uint64_t* epoch_out = nullptr);
  // Whole scan under ONE view: fully transaction-consistent, but holds the
  // cut gate for the duration — use for correctness-critical scans.
  Result<std::vector<std::pair<uint64_t, std::string>>> SnapshotScan(
      uint64_t start, size_t limit, uint64_t* epoch_out = nullptr);
  // Analytics path: re-opens a view every `chunk_limit` pairs, bounding the
  // applier stall per chunk (stalled appliers pin log slots and backpressure
  // every writer). Each chunk is internally consistent; the whole result is
  // a union of per-chunk cuts, resumed by key. *epoch_out gets the epoch of
  // the final chunk.
  Result<std::vector<std::pair<uint64_t, std::string>>> SnapshotScanChunked(
      uint64_t start, size_t limit, size_t chunk_limit, uint64_t* epoch_out = nullptr);

  pds::BPlusTree* tree() { return tree_.get(); }
  txn::TxManager* manager() { return mgr_; }

 private:
  KvStore(txn::TxManager* mgr, std::unique_ptr<pds::BPlusTree> tree)
      : mgr_(mgr), tree_(std::move(tree)) {}

  txn::TxManager* mgr_;
  std::unique_ptr<pds::BPlusTree> tree_;
};

}  // namespace kamino::kv

#endif  // SRC_KV_KV_STORE_H_
