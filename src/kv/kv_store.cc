#include "src/kv/kv_store.h"

#include <algorithm>

namespace kamino::kv {

Result<std::unique_ptr<KvStore>> KvStore::Create(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(mgr);
  if (!tree.ok()) {
    return tree.status();
  }
  mgr->heap()->set_root((*tree)->anchor());
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::unique_ptr<KvStore>> KvStore::Open(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  const uint64_t anchor = mgr->heap()->root();
  if (anchor == 0) {
    return Status::NotFound("heap root holds no store anchor");
  }
  return Attach(mgr, anchor);
}

Result<std::unique_ptr<KvStore>> KvStore::CreateDetached(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(mgr);
  if (!tree.ok()) {
    return tree.status();
  }
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::unique_ptr<KvStore>> KvStore::Attach(txn::TxManager* mgr, uint64_t anchor) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Attach(mgr, anchor);
  if (!tree.ok()) {
    return tree.status();
  }
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::string> KvStore::Read(uint64_t key) { return tree_->Get(key); }

Status KvStore::Update(uint64_t key, std::string_view value) {
  return tree_->Update(key, value);
}

Status KvStore::UpdateAsync(uint64_t key, std::string_view value, txn::CommitAck* ack) {
  return tree_->UpdateAsync(key, value, ack);
}

Status KvStore::Insert(uint64_t key, std::string_view value) {
  return tree_->Insert(key, value);
}

Status KvStore::Upsert(uint64_t key, std::string_view value) {
  return tree_->Upsert(key, value);
}

Status KvStore::ReadModifyWrite(uint64_t key,
                                const std::function<void(std::string&)>& mutate) {
  return tree_->ReadModifyWrite(key, mutate);
}

Result<std::vector<std::pair<uint64_t, std::string>>> KvStore::Scan(uint64_t start,
                                                                    size_t limit) {
  return tree_->Scan(start, limit);
}

Status KvStore::Delete(uint64_t key) { return tree_->Delete(key); }

// --- Backup-snapshot reads (DESIGN.md §12) -----------------------------------

Result<std::string> KvStore::SnapshotRead(uint64_t key, uint64_t* epoch_out) {
  txn::BackupStore* store = mgr_->backup_store();
  if (store == nullptr) {
    return Status::NotSupported("engine has no backup store");
  }
  // Online reconcile repairs the backup outside the cut gate; a snapshot is
  // only meaningful once the copy is whole again.
  mgr_->WaitForRecovery();
  Result<txn::BackupStore::SnapshotView> view = store->OpenSnapshot();
  if (!view.ok()) {
    return view.status();
  }
  if (epoch_out != nullptr) {
    *epoch_out = view->epoch();
  }
  return tree_->SnapshotGet(*view, key);
}

Result<std::vector<std::pair<uint64_t, std::string>>> KvStore::SnapshotScan(
    uint64_t start, size_t limit, uint64_t* epoch_out) {
  txn::BackupStore* store = mgr_->backup_store();
  if (store == nullptr) {
    return Status::NotSupported("engine has no backup store");
  }
  mgr_->WaitForRecovery();
  Result<txn::BackupStore::SnapshotView> view = store->OpenSnapshot();
  if (!view.ok()) {
    return view.status();
  }
  if (epoch_out != nullptr) {
    *epoch_out = view->epoch();
  }
  return tree_->SnapshotScan(*view, start, limit);
}

Result<std::vector<std::pair<uint64_t, std::string>>> KvStore::SnapshotScanChunked(
    uint64_t start, size_t limit, size_t chunk_limit, uint64_t* epoch_out) {
  txn::BackupStore* store = mgr_->backup_store();
  if (store == nullptr) {
    return Status::NotSupported("engine has no backup store");
  }
  if (chunk_limit == 0) {
    return Status::InvalidArgument("chunk_limit must be positive");
  }
  mgr_->WaitForRecovery();
  std::vector<std::pair<uint64_t, std::string>> out;
  uint64_t resume = start;
  while (out.size() < limit) {
    const size_t want = std::min(chunk_limit, limit - out.size());
    Result<txn::BackupStore::SnapshotView> view = store->OpenSnapshot();
    if (!view.ok()) {
      return view.status();
    }
    if (epoch_out != nullptr) {
      *epoch_out = view->epoch();
    }
    Result<std::vector<std::pair<uint64_t, std::string>>> chunk =
        tree_->SnapshotScan(*view, resume, want);
    if (!chunk.ok()) {
      return chunk.status();
    }
    const size_t got = chunk->size();
    for (auto& kv : *chunk) {
      out.push_back(std::move(kv));
    }
    if (got < want) {
      break;  // Past the end of the keyspace.
    }
    const uint64_t last = out.back().first;
    if (last == UINT64_MAX) {
      break;
    }
    resume = last + 1;  // Re-descend by key under the next view.
  }
  return out;
}

}  // namespace kamino::kv
