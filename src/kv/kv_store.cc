#include "src/kv/kv_store.h"

namespace kamino::kv {

Result<std::unique_ptr<KvStore>> KvStore::Create(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(mgr);
  if (!tree.ok()) {
    return tree.status();
  }
  mgr->heap()->set_root((*tree)->anchor());
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::unique_ptr<KvStore>> KvStore::Open(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  const uint64_t anchor = mgr->heap()->root();
  if (anchor == 0) {
    return Status::NotFound("heap root holds no store anchor");
  }
  return Attach(mgr, anchor);
}

Result<std::unique_ptr<KvStore>> KvStore::CreateDetached(txn::TxManager* mgr) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Create(mgr);
  if (!tree.ok()) {
    return tree.status();
  }
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::unique_ptr<KvStore>> KvStore::Attach(txn::TxManager* mgr, uint64_t anchor) {
  if (mgr == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  Result<std::unique_ptr<pds::BPlusTree>> tree = pds::BPlusTree::Attach(mgr, anchor);
  if (!tree.ok()) {
    return tree.status();
  }
  return std::unique_ptr<KvStore>(new KvStore(mgr, std::move(*tree)));
}

Result<std::string> KvStore::Read(uint64_t key) { return tree_->Get(key); }

Status KvStore::Update(uint64_t key, std::string_view value) {
  return tree_->Update(key, value);
}

Status KvStore::UpdateAsync(uint64_t key, std::string_view value, txn::CommitAck* ack) {
  return tree_->UpdateAsync(key, value, ack);
}

Status KvStore::Insert(uint64_t key, std::string_view value) {
  return tree_->Insert(key, value);
}

Status KvStore::Upsert(uint64_t key, std::string_view value) {
  return tree_->Upsert(key, value);
}

Status KvStore::ReadModifyWrite(uint64_t key,
                                const std::function<void(std::string&)>& mutate) {
  return tree_->ReadModifyWrite(key, mutate);
}

Result<std::vector<std::pair<uint64_t, std::string>>> KvStore::Scan(uint64_t start,
                                                                    size_t limit) {
  return tree_->Scan(start, limit);
}

Status KvStore::Delete(uint64_t key) { return tree_->Delete(key); }

}  // namespace kamino::kv
