#include "src/alloc/allocator.h"

#include <algorithm>
#include <cstring>

#include "src/common/cacheline.h"
#include "src/common/checksum.h"

namespace kamino::alloc {

namespace {
// Number of 64-bit bitmap words needed for `slots` slots.
uint64_t BitmapWords(uint64_t slots) { return (slots + 63) / 64; }
}  // namespace

Allocator::Allocator(nvm::Pool* pool, uint64_t region_offset)
    : pool_(pool), region_offset_(region_offset) {}

int Allocator::SizeClassFor(uint64_t size) {
  if (size > kMaxClassSize) {
    return -1;
  }
  uint64_t need = std::max<uint64_t>(size, kMinClassSize);
  int cls = 0;
  uint64_t cap = kMinClassSize;
  while (cap < need) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

Result<std::unique_ptr<Allocator>> Allocator::Create(nvm::Pool* pool, uint64_t region_offset,
                                                     uint64_t region_size) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  if (region_offset + region_size > pool->size()) {
    return Status::InvalidArgument("allocator region exceeds pool");
  }
  auto a = std::unique_ptr<Allocator>(new Allocator(pool, region_offset));
  Status st = a->Format(region_size);
  if (!st.ok()) {
    return st;
  }
  return a;
}

Result<std::unique_ptr<Allocator>> Allocator::Open(nvm::Pool* pool, uint64_t region_offset) {
  if (pool == nullptr) {
    return Status::InvalidArgument("null pool");
  }
  auto a = std::unique_ptr<Allocator>(new Allocator(pool, region_offset));
  Status st = a->Attach();
  if (!st.ok()) {
    return st;
  }
  return a;
}

Status Allocator::Format(uint64_t region_size) {
  region_size_ = region_size;
  first_chunk_offset_ = AlignUp(region_offset_ + sizeof(Superblock), 4096);
  const uint64_t region_end = region_offset_ + region_size_;
  if (first_chunk_offset_ + kChunkSize > region_end) {
    return Status::InvalidArgument("allocator region too small for one chunk");
  }
  num_chunks_ = (region_end - first_chunk_offset_) / kChunkSize;

  // Chunk headers first: a header must never read as a valid slab/span before
  // the superblock says the region is formatted.
  for (uint64_t i = 0; i < num_chunks_; ++i) {
    ChunkHeader* h = HeaderOf(i);
    h->state = static_cast<uint64_t>(ChunkState::kFree);
    h->size_class = 0;
    h->span_chunks = 0;
    h->span_bytes = 0;
    pool_->Flush(h, sizeof(uint64_t) * 4);
  }
  pool_->Drain();

  auto* sb = static_cast<Superblock*>(pool_->At(region_offset_));
  sb->magic = kMagic;
  sb->version = 1;
  sb->region_size = region_size_;
  sb->num_chunks = num_chunks_;
  sb->first_chunk_offset = first_chunk_offset_;
  sb->checksum = Crc64(sb, offsetof(Superblock, checksum));
  pool_->Persist(sb, sizeof(Superblock));

  chunk_info_.assign(num_chunks_, ChunkInfo{});
  free_chunks_.reserve(num_chunks_);
  for (uint64_t i = 0; i < num_chunks_; ++i) {
    free_chunks_.push_back(i);
  }
  return Status::Ok();
}

Status Allocator::Attach() {
  const auto* sb = static_cast<const Superblock*>(pool_->At(region_offset_));
  if (sb->magic != kMagic) {
    return Status::Corruption("allocator superblock magic mismatch");
  }
  if (sb->checksum != Crc64(sb, offsetof(Superblock, checksum))) {
    return Status::Corruption("allocator superblock checksum mismatch");
  }
  region_size_ = sb->region_size;
  num_chunks_ = sb->num_chunks;
  first_chunk_offset_ = sb->first_chunk_offset;

  chunk_info_.assign(num_chunks_, ChunkInfo{});
  free_chunks_.clear();

  uint64_t reserved = 0;
  uint64_t allocated = 0;
  uint64_t i = 0;
  while (i < num_chunks_) {
    ChunkHeader* h = HeaderOf(i);
    switch (static_cast<ChunkState>(h->state)) {
      case ChunkState::kFree:
        free_chunks_.push_back(i);
        ++i;
        break;
      case ChunkState::kSlab: {
        const int cls = static_cast<int>(h->size_class);
        if (cls < 0 || cls >= kNumSizeClasses) {
          return Status::Corruption("slab chunk with bad size class");
        }
        const uint64_t slots = SlotsPerChunk(cls);
        uint64_t used = 0;
        for (uint64_t w = 0; w < BitmapWords(slots); ++w) {
          used += static_cast<uint64_t>(__builtin_popcountll(h->bitmap[w]));
        }
        chunk_info_[i].used = used;
        chunk_info_[i].reserved.assign(BitmapWords(slots), 0);
        if (used < slots) {
          partial_chunks_[cls].push_back(i);
        }
        reserved += kChunkSize;
        allocated += used * ClassSize(cls);
        ++i;
        break;
      }
      case ChunkState::kSpanStart: {
        const uint64_t n = h->span_chunks;
        if (n == 0 || i + n > num_chunks_) {
          return Status::Corruption("span exceeds region");
        }
        reserved += n * kChunkSize;
        allocated += h->span_bytes;
        i += n;
        break;
      }
      case ChunkState::kSpanCont:
        // Orphaned continuation: the crash hit between persisting the
        // continuation headers and the span-start header. The allocation
        // never completed, so reclaim the chunk.
        h->state = static_cast<uint64_t>(ChunkState::kFree);
        pool_->Persist(&h->state, sizeof(h->state));
        free_chunks_.push_back(i);
        ++i;
        break;
      default:
        return Status::Corruption("unknown chunk state");
    }
  }
  std::sort(free_chunks_.begin(), free_chunks_.end());
  bytes_reserved_.store(reserved, std::memory_order_relaxed);
  bytes_allocated_.store(allocated, std::memory_order_relaxed);
  return Status::Ok();
}

Allocator::ChunkHeader* Allocator::HeaderOf(uint64_t chunk_index) {
  return static_cast<ChunkHeader*>(pool_->At(ChunkOffset(chunk_index)));
}
const Allocator::ChunkHeader* Allocator::HeaderOf(uint64_t chunk_index) const {
  return static_cast<const ChunkHeader*>(pool_->At(ChunkOffset(chunk_index)));
}

Result<uint64_t> Allocator::ClaimSlabChunkLocked(int size_class) {
  if (free_chunks_.empty()) {
    return Status::OutOfMemory("no free chunks");
  }
  const uint64_t idx = free_chunks_.back();
  free_chunks_.pop_back();

  ChunkHeader* h = HeaderOf(idx);
  const uint64_t slots = SlotsPerChunk(size_class);
  const uint64_t words = BitmapWords(slots);
  std::memset(h->bitmap, 0, words * sizeof(uint64_t));
  pool_->Flush(h->bitmap, words * sizeof(uint64_t));
  h->size_class = static_cast<uint64_t>(size_class);
  pool_->Flush(&h->size_class, sizeof(h->size_class));
  pool_->Drain();
  // State flips to kSlab only after class + bitmap are durable, so a crash
  // can never expose a slab with a stale bitmap.
  h->state = static_cast<uint64_t>(ChunkState::kSlab);
  pool_->Persist(&h->state, sizeof(h->state));

  chunk_info_[idx].used = 0;
  chunk_info_[idx].reserved.assign(words, 0);
  bytes_reserved_.fetch_add(kChunkSize, std::memory_order_relaxed);
  return idx;
}

Result<Reservation> Allocator::PrepareFromClass(int size_class, uint64_t size) {
  std::lock_guard<std::mutex> guard(class_mu_[size_class]);
  auto& partials = partial_chunks_[size_class];

  if (partials.empty()) {
    std::lock_guard<std::mutex> cguard(chunks_mu_);
    Result<uint64_t> claimed = ClaimSlabChunkLocked(size_class);
    if (!claimed.ok()) {
      return claimed.status();
    }
    partials.push_back(*claimed);
  }

  const uint64_t idx = partials.back();
  ChunkHeader* h = HeaderOf(idx);
  ChunkInfo& info = chunk_info_[idx];
  const uint64_t slots = SlotsPerChunk(size_class);
  const uint64_t words = BitmapWords(slots);
  if (info.reserved.size() != words) {
    info.reserved.assign(words, 0);
  }

  for (uint64_t w = 0; w < words; ++w) {
    const uint64_t occupied = h->bitmap[w] | info.reserved[w];
    if (occupied == ~0ull) {
      continue;
    }
    const int bit = __builtin_ctzll(~occupied);
    const uint64_t slot = w * 64 + static_cast<uint64_t>(bit);
    if (slot >= slots) {
      break;  // Trailing bits past the last slot.
    }
    info.reserved[w] |= (1ull << bit);  // Volatile only — nothing persisted.
    if (++info.used == slots) {
      partials.pop_back();
    }
    bytes_allocated_.fetch_add(ClassSize(size_class), std::memory_order_relaxed);
    Reservation r;
    r.offset = ChunkDataOffset(idx) + slot * ClassSize(size_class);
    r.size = size;
    r.size_class = size_class;
    r.chunk_index = idx;
    r.slot = slot;
    return r;
  }
  return Status::Internal("partial-chunk index out of sync with bitmap");
}

Result<Reservation> Allocator::PrepareSpanLocked(uint64_t span_chunks, uint64_t size) {
  // free_chunks_ is kept sorted; find a run of `span_chunks` consecutive
  // indexes.
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  size_t run_begin_pos = 0;
  for (size_t pos = 0; pos < free_chunks_.size(); ++pos) {
    if (run_len == 0 || free_chunks_[pos] != run_start + run_len) {
      run_start = free_chunks_[pos];
      run_len = 1;
      run_begin_pos = pos;
    } else {
      ++run_len;
    }
    if (run_len == span_chunks) {
      // Volatile reservation: just take the chunks off the free list.
      free_chunks_.erase(free_chunks_.begin() + static_cast<ptrdiff_t>(run_begin_pos),
                         free_chunks_.begin() + static_cast<ptrdiff_t>(run_begin_pos) +
                             static_cast<ptrdiff_t>(span_chunks));
      bytes_reserved_.fetch_add(span_chunks * kChunkSize, std::memory_order_relaxed);
      bytes_allocated_.fetch_add(size, std::memory_order_relaxed);
      Reservation r;
      r.offset = ChunkDataOffset(run_start);
      r.size = size;
      r.size_class = -1;
      r.chunk_index = run_start;
      r.span_chunks = span_chunks;
      return r;
    }
  }
  return Status::OutOfMemory("no contiguous chunk run for span");
}

Result<Reservation> Allocator::PrepareAlloc(uint64_t size) {
  alloc_calls_.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) {
    size = 1;
  }
  const int cls = SizeClassFor(size);
  if (cls >= 0) {
    return PrepareFromClass(cls, size);
  }
  const uint64_t span_chunks = (kChunkHeaderSize + size + kChunkSize - 1) / kChunkSize;
  std::lock_guard<std::mutex> guard(chunks_mu_);
  return PrepareSpanLocked(span_chunks, size);
}

void Allocator::CommitAlloc(const Reservation& resv) {
  if (resv.size_class >= 0) {
    std::lock_guard<std::mutex> guard(class_mu_[resv.size_class]);
    ChunkHeader* h = HeaderOf(resv.chunk_index);
    ChunkInfo& info = chunk_info_[resv.chunk_index];
    const uint64_t mask = 1ull << (resv.slot % 64);
    h->bitmap[resv.slot / 64] |= mask;
    pool_->Persist(&h->bitmap[resv.slot / 64], sizeof(uint64_t));
    info.reserved[resv.slot / 64] &= ~mask;
    return;
  }
  // Span: persist continuation headers first, the span-start header last. An
  // orphaned continuation is reclaimed at Attach(); an orphaned start would
  // leak the whole span.
  std::lock_guard<std::mutex> guard(chunks_mu_);
  for (uint64_t j = 1; j < resv.span_chunks; ++j) {
    ChunkHeader* h = HeaderOf(resv.chunk_index + j);
    h->state = static_cast<uint64_t>(ChunkState::kSpanCont);
    pool_->Flush(&h->state, sizeof(h->state));
  }
  pool_->Drain();
  ChunkHeader* start = HeaderOf(resv.chunk_index);
  start->span_chunks = resv.span_chunks;
  start->span_bytes = resv.size;
  pool_->Flush(&start->span_chunks, sizeof(uint64_t) * 2);
  pool_->Drain();
  start->state = static_cast<uint64_t>(ChunkState::kSpanStart);
  pool_->Persist(&start->state, sizeof(start->state));
}

void Allocator::CancelAlloc(const Reservation& resv) {
  if (resv.size_class >= 0) {
    std::lock_guard<std::mutex> guard(class_mu_[resv.size_class]);
    ChunkInfo& info = chunk_info_[resv.chunk_index];
    const uint64_t mask = 1ull << (resv.slot % 64);
    info.reserved[resv.slot / 64] &= ~mask;
    const uint64_t slots = SlotsPerChunk(resv.size_class);
    if (info.used == slots) {
      partial_chunks_[resv.size_class].push_back(resv.chunk_index);
    }
    --info.used;
    bytes_allocated_.fetch_sub(ClassSize(resv.size_class), std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> guard(chunks_mu_);
  for (uint64_t j = 0; j < resv.span_chunks; ++j) {
    free_chunks_.push_back(resv.chunk_index + j);
  }
  std::sort(free_chunks_.begin(), free_chunks_.end());
  bytes_reserved_.fetch_sub(resv.span_chunks * kChunkSize, std::memory_order_relaxed);
  bytes_allocated_.fetch_sub(resv.size, std::memory_order_relaxed);
}

Result<uint64_t> Allocator::AllocRaw(uint64_t size) {
  Result<Reservation> resv = PrepareAlloc(size);
  if (!resv.ok()) {
    return resv.status();
  }
  CommitAlloc(*resv);
  return resv->offset;
}

void Allocator::ReclaimChunkIfEmptyLocked(int cls, uint64_t chunk_index) {
  ChunkInfo& info = chunk_info_[chunk_index];
  if (info.used != 0) {
    return;
  }
  auto& partials = partial_chunks_[cls];
  // Hysteresis: keep one (empty) chunk cached per class. Alloc/free cycles at
  // a class boundary would otherwise reformat a chunk's bitmap on every
  // allocation (a 2 KiB flush), which is exactly the kind of critical-path
  // persistence churn this library exists to avoid.
  if (partials.size() <= 1) {
    return;
  }
  partials.erase(std::remove(partials.begin(), partials.end(), chunk_index), partials.end());
  ChunkHeader* h = HeaderOf(chunk_index);
  h->state = static_cast<uint64_t>(ChunkState::kFree);
  pool_->Persist(&h->state, sizeof(h->state));
  std::lock_guard<std::mutex> cguard(chunks_mu_);
  free_chunks_.push_back(chunk_index);
  std::sort(free_chunks_.begin(), free_chunks_.end());
  bytes_reserved_.fetch_sub(kChunkSize, std::memory_order_relaxed);
}

Status Allocator::FreeSlabSlotLocked(int cls, uint64_t chunk_index, uint64_t slot,
                                     bool keep_reserved) {
  ChunkHeader* h = HeaderOf(chunk_index);
  ChunkInfo& info = chunk_info_[chunk_index];
  const uint64_t slots = SlotsPerChunk(cls);
  const uint64_t words = BitmapWords(slots);
  if (info.reserved.size() != words) {
    info.reserved.assign(words, 0);
  }
  const uint64_t mask = 1ull << (slot % 64);
  uint64_t& word = h->bitmap[slot / 64];
  if ((word & mask) == 0) {
    return Status::Ok();  // Idempotent re-free (recovery path).
  }
  const bool was_full = (info.used == slots);
  word &= ~mask;
  pool_->Persist(&word, sizeof(word));
  bytes_allocated_.fetch_sub(ClassSize(cls), std::memory_order_relaxed);

  if (keep_reserved) {
    info.reserved[slot / 64] |= mask;  // Slot unavailable until released.
    return Status::Ok();
  }
  --info.used;
  if (was_full) {
    partial_chunks_[cls].push_back(chunk_index);
  }
  ReclaimChunkIfEmptyLocked(cls, chunk_index);
  return Status::Ok();
}

Status Allocator::FreeRaw(uint64_t offset) {
  free_calls_.fetch_add(1, std::memory_order_relaxed);
  if (offset < first_chunk_offset_ ||
      offset >= first_chunk_offset_ + num_chunks_ * kChunkSize) {
    return Status::InvalidArgument("offset outside allocator region");
  }
  const uint64_t idx = (offset - first_chunk_offset_) / kChunkSize;
  ChunkHeader* h = HeaderOf(idx);

  switch (static_cast<ChunkState>(h->state)) {
    case ChunkState::kSlab: {
      const int cls = static_cast<int>(h->size_class);
      const uint64_t data_off = ChunkDataOffset(idx);
      if (offset < data_off || (offset - data_off) % ClassSize(cls) != 0) {
        return Status::InvalidArgument("offset not an allocation start");
      }
      const uint64_t slot = (offset - data_off) / ClassSize(cls);
      if (slot >= SlotsPerChunk(cls)) {
        return Status::InvalidArgument("slot out of range");
      }
      std::lock_guard<std::mutex> guard(class_mu_[cls]);
      return FreeSlabSlotLocked(cls, idx, slot, /*keep_reserved=*/false);
    }
    case ChunkState::kSpanStart: {
      if (offset != ChunkDataOffset(idx)) {
        return Status::InvalidArgument("offset not a span payload start");
      }
      std::lock_guard<std::mutex> guard(chunks_mu_);
      const uint64_t n = h->span_chunks;
      bytes_allocated_.fetch_sub(h->span_bytes, std::memory_order_relaxed);
      // Invalidate the start header first so a crash mid-free cannot leave a
      // span whose continuations are already free.
      h->state = static_cast<uint64_t>(ChunkState::kFree);
      pool_->Persist(&h->state, sizeof(h->state));
      free_chunks_.push_back(idx);
      for (uint64_t j = 1; j < n; ++j) {
        ChunkHeader* c = HeaderOf(idx + j);
        c->state = static_cast<uint64_t>(ChunkState::kFree);
        pool_->Flush(&c->state, sizeof(c->state));
        free_chunks_.push_back(idx + j);
      }
      pool_->Drain();
      std::sort(free_chunks_.begin(), free_chunks_.end());
      bytes_reserved_.fetch_sub(n * kChunkSize, std::memory_order_relaxed);
      return Status::Ok();
    }
    case ChunkState::kFree:
    case ChunkState::kSpanCont:
      return Status::Ok();  // Idempotent.
  }
  return Status::Corruption("unknown chunk state in FreeRaw");
}

Status Allocator::ForceAllocAt(uint64_t offset, uint64_t size) {
  if (size == 0) {
    size = 1;
  }
  if (offset < first_chunk_offset_ ||
      offset >= first_chunk_offset_ + num_chunks_ * kChunkSize) {
    return Status::InvalidArgument("offset outside allocator region");
  }
  const uint64_t idx = (offset - first_chunk_offset_) / kChunkSize;
  const int cls = SizeClassFor(size);

  if (cls < 0) {
    // Span. Either the identical span already exists, or the chunks are free
    // and we claim them.
    const uint64_t span_chunks = (kChunkHeaderSize + size + kChunkSize - 1) / kChunkSize;
    if (offset != ChunkDataOffset(idx)) {
      return Status::InvalidArgument("span offset not at a chunk payload start");
    }
    std::lock_guard<std::mutex> guard(chunks_mu_);
    ChunkHeader* start = HeaderOf(idx);
    if (static_cast<ChunkState>(start->state) == ChunkState::kSpanStart &&
        start->span_chunks == span_chunks) {
      return Status::Ok();  // Already allocated.
    }
    for (uint64_t j = 0; j < span_chunks; ++j) {
      if (static_cast<ChunkState>(HeaderOf(idx + j)->state) != ChunkState::kFree) {
        return Status::Internal("span chunks not reclaimable for ForceAllocAt");
      }
    }
    for (uint64_t j = 1; j < span_chunks; ++j) {
      ChunkHeader* h = HeaderOf(idx + j);
      h->state = static_cast<uint64_t>(ChunkState::kSpanCont);
      pool_->Flush(&h->state, sizeof(h->state));
    }
    pool_->Drain();
    start->span_chunks = span_chunks;
    start->span_bytes = size;
    pool_->Flush(&start->span_chunks, sizeof(uint64_t) * 2);
    pool_->Drain();
    start->state = static_cast<uint64_t>(ChunkState::kSpanStart);
    pool_->Persist(&start->state, sizeof(start->state));
    for (uint64_t j = 0; j < span_chunks; ++j) {
      free_chunks_.erase(std::remove(free_chunks_.begin(), free_chunks_.end(), idx + j),
                         free_chunks_.end());
    }
    bytes_reserved_.fetch_add(span_chunks * kChunkSize, std::memory_order_relaxed);
    bytes_allocated_.fetch_add(size, std::memory_order_relaxed);
    return Status::Ok();
  }

  std::lock_guard<std::mutex> guard(class_mu_[cls]);
  ChunkHeader* h = HeaderOf(idx);
  bool fresh_chunk = false;
  if (static_cast<ChunkState>(h->state) == ChunkState::kFree) {
    std::lock_guard<std::mutex> cguard(chunks_mu_);
    auto it = std::find(free_chunks_.begin(), free_chunks_.end(), idx);
    if (it == free_chunks_.end()) {
      return Status::Internal("free chunk missing from free list");
    }
    free_chunks_.erase(it);
    const uint64_t slots = SlotsPerChunk(cls);
    const uint64_t words = (slots + 63) / 64;
    std::memset(h->bitmap, 0, words * sizeof(uint64_t));
    pool_->Flush(h->bitmap, words * sizeof(uint64_t));
    h->size_class = static_cast<uint64_t>(cls);
    pool_->Flush(&h->size_class, sizeof(h->size_class));
    pool_->Drain();
    h->state = static_cast<uint64_t>(ChunkState::kSlab);
    pool_->Persist(&h->state, sizeof(h->state));
    chunk_info_[idx].used = 0;
    chunk_info_[idx].reserved.assign(words, 0);
    bytes_reserved_.fetch_add(kChunkSize, std::memory_order_relaxed);
    fresh_chunk = true;
  }
  if (static_cast<ChunkState>(h->state) != ChunkState::kSlab ||
      static_cast<int>(h->size_class) != cls) {
    return Status::Internal("chunk incompatible with forced allocation");
  }
  const uint64_t data_off = ChunkDataOffset(idx);
  if (offset < data_off || (offset - data_off) % ClassSize(cls) != 0) {
    return Status::InvalidArgument("offset not a slot start for its class");
  }
  const uint64_t slot = (offset - data_off) / ClassSize(cls);
  const uint64_t slots = SlotsPerChunk(cls);
  if (slot >= slots) {
    return Status::InvalidArgument("slot out of range");
  }
  const uint64_t mask = 1ull << (slot % 64);
  ChunkInfo& info = chunk_info_[idx];
  if ((h->bitmap[slot / 64] & mask) == 0) {
    const bool was_full = (info.used == slots);
    h->bitmap[slot / 64] |= mask;
    pool_->Persist(&h->bitmap[slot / 64], sizeof(uint64_t));
    ++info.used;
    bytes_allocated_.fetch_add(ClassSize(cls), std::memory_order_relaxed);
    auto& partials = partial_chunks_[cls];
    if (info.used == slots && !was_full) {
      partials.erase(std::remove(partials.begin(), partials.end(), idx), partials.end());
    }
  }
  if (fresh_chunk && info.used < slots) {
    partial_chunks_[cls].push_back(idx);
  }
  return Status::Ok();
}

Status Allocator::FreeRawKeepReserved(uint64_t offset) {
  free_calls_.fetch_add(1, std::memory_order_relaxed);
  if (offset < first_chunk_offset_ ||
      offset >= first_chunk_offset_ + num_chunks_ * kChunkSize) {
    return Status::InvalidArgument("offset outside allocator region");
  }
  const uint64_t idx = (offset - first_chunk_offset_) / kChunkSize;
  ChunkHeader* h = HeaderOf(idx);

  switch (static_cast<ChunkState>(h->state)) {
    case ChunkState::kSlab: {
      const int cls = static_cast<int>(h->size_class);
      const uint64_t data_off = ChunkDataOffset(idx);
      if (offset < data_off || (offset - data_off) % ClassSize(cls) != 0) {
        return Status::InvalidArgument("offset not an allocation start");
      }
      const uint64_t slot = (offset - data_off) / ClassSize(cls);
      if (slot >= SlotsPerChunk(cls)) {
        return Status::InvalidArgument("slot out of range");
      }
      std::lock_guard<std::mutex> guard(class_mu_[cls]);
      return FreeSlabSlotLocked(cls, idx, slot, /*keep_reserved=*/true);
    }
    case ChunkState::kSpanStart: {
      if (offset != ChunkDataOffset(idx)) {
        return Status::InvalidArgument("offset not a span payload start");
      }
      std::lock_guard<std::mutex> guard(chunks_mu_);
      const uint64_t n = h->span_chunks;
      bytes_allocated_.fetch_sub(h->span_bytes, std::memory_order_relaxed);
      chunk_info_[idx].reserved_span_chunks = n;  // For ReleaseReservation.
      h->state = static_cast<uint64_t>(ChunkState::kFree);
      pool_->Persist(&h->state, sizeof(h->state));
      for (uint64_t j = 1; j < n; ++j) {
        ChunkHeader* c = HeaderOf(idx + j);
        c->state = static_cast<uint64_t>(ChunkState::kFree);
        pool_->Flush(&c->state, sizeof(c->state));
      }
      pool_->Drain();
      // Chunks intentionally NOT returned to free_chunks_ yet.
      return Status::Ok();
    }
    case ChunkState::kFree:
    case ChunkState::kSpanCont:
      return Status::Ok();
  }
  return Status::Corruption("unknown chunk state in FreeRawKeepReserved");
}

void Allocator::ReleaseReservation(uint64_t offset) {
  if (offset < first_chunk_offset_ ||
      offset >= first_chunk_offset_ + num_chunks_ * kChunkSize) {
    return;
  }
  const uint64_t idx = (offset - first_chunk_offset_) / kChunkSize;
  ChunkHeader* h = HeaderOf(idx);

  // Two-phase span free left the start chunk marked kFree with a volatile
  // note of the span length.
  {
    std::lock_guard<std::mutex> guard(chunks_mu_);
    ChunkInfo& info = chunk_info_[idx];
    if (info.reserved_span_chunks != 0 && offset == ChunkDataOffset(idx)) {
      const uint64_t n = info.reserved_span_chunks;
      info.reserved_span_chunks = 0;
      for (uint64_t j = 0; j < n; ++j) {
        free_chunks_.push_back(idx + j);
      }
      std::sort(free_chunks_.begin(), free_chunks_.end());
      bytes_reserved_.fetch_sub(n * kChunkSize, std::memory_order_relaxed);
      return;
    }
  }

  if (static_cast<ChunkState>(h->state) != ChunkState::kSlab) {
    return;
  }
  const int cls = static_cast<int>(h->size_class);
  const uint64_t data_off = ChunkDataOffset(idx);
  if (offset < data_off || (offset - data_off) % ClassSize(cls) != 0) {
    return;
  }
  const uint64_t slot = (offset - data_off) / ClassSize(cls);
  const uint64_t slots = SlotsPerChunk(cls);
  if (slot >= slots) {
    return;
  }
  std::lock_guard<std::mutex> guard(class_mu_[cls]);
  ChunkInfo& info = chunk_info_[idx];
  const uint64_t mask = 1ull << (slot % 64);
  if (info.reserved.size() <= slot / 64 || (info.reserved[slot / 64] & mask) == 0) {
    return;  // Not a held reservation.
  }
  info.reserved[slot / 64] &= ~mask;
  const bool was_full = (info.used == slots);
  --info.used;
  if (was_full) {
    partial_chunks_[cls].push_back(idx);
  }
  ReclaimChunkIfEmptyLocked(cls, idx);
}

uint64_t Allocator::UsableSize(uint64_t offset) const {
  if (offset < first_chunk_offset_ ||
      offset >= first_chunk_offset_ + num_chunks_ * kChunkSize) {
    return 0;
  }
  const uint64_t idx = (offset - first_chunk_offset_) / kChunkSize;
  const ChunkHeader* h = HeaderOf(idx);
  switch (static_cast<ChunkState>(h->state)) {
    case ChunkState::kSlab: {
      const int cls = static_cast<int>(h->size_class);
      const uint64_t data_off = ChunkDataOffset(idx);
      if (offset < data_off || (offset - data_off) % ClassSize(cls) != 0) {
        return 0;
      }
      const uint64_t slot = (offset - data_off) / ClassSize(cls);
      if (slot >= SlotsPerChunk(cls)) {
        return 0;
      }
      // The bitmap word is shared with concurrent frees of sibling slots.
      std::lock_guard<std::mutex> guard(class_mu_[cls]);
      if ((h->bitmap[slot / 64] & (1ull << (slot % 64))) == 0) {
        return 0;
      }
      return ClassSize(cls);
    }
    case ChunkState::kSpanStart:
      if (offset == ChunkDataOffset(idx)) {
        return h->span_bytes;
      }
      return 0;
    default:
      return 0;
  }
}

bool Allocator::IsAllocated(uint64_t offset) const { return UsableSize(offset) != 0; }

void Allocator::ForEachAllocation(const std::function<void(uint64_t, uint64_t)>& fn) const {
  uint64_t i = 0;
  while (i < num_chunks_) {
    const ChunkHeader* h = HeaderOf(i);
    switch (static_cast<ChunkState>(h->state)) {
      case ChunkState::kSlab: {
        const int cls = static_cast<int>(h->size_class);
        const uint64_t slots = SlotsPerChunk(cls);
        for (uint64_t slot = 0; slot < slots; ++slot) {
          if ((h->bitmap[slot / 64] >> (slot % 64)) & 1) {
            fn(ChunkDataOffset(i) + slot * ClassSize(cls), ClassSize(cls));
          }
        }
        ++i;
        break;
      }
      case ChunkState::kSpanStart:
        fn(ChunkDataOffset(i), h->span_bytes);
        i += h->span_chunks;
        break;
      default:
        ++i;
        break;
    }
  }
}

AllocatorStats Allocator::stats() const {
  AllocatorStats s;
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  s.capacity = num_chunks_ * (kChunkSize - kChunkHeaderSize);
  s.alloc_calls = alloc_calls_.load(std::memory_order_relaxed);
  s.free_calls = free_calls_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kamino::alloc
