// Crash-consistent persistent-memory allocator.
//
// Kamino-Tx (paper §6.1) treats allocation and deallocation as operations the
// Log Manager is told about: engines record an allocation intent *before* any
// persistent allocator metadata changes, and recovery rolls incomplete
// transactions' allocations back. To make that ordering possible without a
// leak window, allocation is two-phase:
//
//   PrepareAlloc(size)  -> picks a slot and reserves it *volatilely* (no
//                          persistent store at all);
//   <engine persists the allocation intent record>
//   CommitAlloc(resv)   -> sets + persists the bitmap bit (or span headers).
//
// A crash before CommitAlloc leaves no persistent trace (nothing to leak); a
// crash after leaves a durable intent record, and recovery calls the
// idempotent FreeRaw. Deallocation inside a transaction is symmetric and
// two-phase in the other direction: FreeRawKeepReserved clears the persistent
// bit but keeps the slot volatilely reserved so no concurrent transaction can
// reuse it until the freeing transaction is fully resolved
// (ReleaseReservation).
//
// Layout: the region is divided into 1 MiB chunks. A chunk is free, a slab
// dedicated to one size class (with a persistent allocation bitmap in its
// header), or part of a multi-chunk span for large allocations. Bitmap
// updates are single aligned 8-byte stores + persist — failure-atomic. All
// free lists are volatile and rebuilt by scanning chunk headers at Open().

#ifndef SRC_ALLOC_ALLOCATOR_H_
#define SRC_ALLOC_ALLOCATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/nvm/pool.h"

namespace kamino::alloc {

// Size classes: powers of two from 64 B to 64 KiB. Requests above the largest
// class are served from multi-chunk spans.
inline constexpr uint64_t kMinClassSize = 64;
inline constexpr uint64_t kMaxClassSize = 64 * 1024;
inline constexpr int kNumSizeClasses = 11;  // 64,128,...,65536.

inline constexpr uint64_t kChunkSize = 1ull << 20;  // 1 MiB.
inline constexpr uint64_t kChunkHeaderSize = 4096;  // Header + bitmap.

struct AllocatorStats {
  uint64_t bytes_allocated = 0;  // Live payload bytes (rounded to class size).
  uint64_t bytes_reserved = 0;   // Chunk bytes claimed from the region.
  uint64_t capacity = 0;         // Total data bytes the region can serve.
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
};

// Returned by PrepareAlloc; opaque to callers apart from `offset`/`size`.
struct Reservation {
  uint64_t offset = 0;      // Payload pool offset.
  uint64_t size = 0;        // Requested size.
  int size_class = -1;      // -1 => span allocation.
  uint64_t chunk_index = 0;
  uint64_t slot = 0;        // Slab slot index.
  uint64_t span_chunks = 0; // Span length in chunks.
};

class Allocator {
 public:
  // Formats [region_offset, region_offset + region_size) of `pool` as a fresh
  // allocator region.
  static Result<std::unique_ptr<Allocator>> Create(nvm::Pool* pool, uint64_t region_offset,
                                                   uint64_t region_size);

  // Reattaches to an existing region, rebuilding volatile free lists from the
  // persistent chunk headers (recovery path).
  static Result<std::unique_ptr<Allocator>> Open(nvm::Pool* pool, uint64_t region_offset);

  // --- Two-phase allocation (transactional path) ---
  Result<Reservation> PrepareAlloc(uint64_t size);
  void CommitAlloc(const Reservation& resv);
  void CancelAlloc(const Reservation& resv);

  // --- One-shot allocation (Prepare + Commit), for non-transactional use ---
  Result<uint64_t> AllocRaw(uint64_t size);

  // Immediately frees an allocation. Idempotent: freeing an offset whose bit
  // is already clear is a no-op (recovery may re-free).
  Status FreeRaw(uint64_t offset);

  // Recovery-only: forces the allocation at `offset` (of `size` bytes) to
  // exist, claiming the containing chunk(s) if necessary. Idempotent. Used
  // by chain-replica roll-forward, where a peer's committed allocation must
  // be reproduced locally (replica heaps are deterministic, so the offset is
  // valid here too). Fails if the offset's chunk is already dedicated to an
  // incompatible size class.
  Status ForceAllocAt(uint64_t offset, uint64_t size);

  // --- Two-phase free (transactional path) ---
  // Clears the persistent allocation but keeps the slot volatilely reserved.
  Status FreeRawKeepReserved(uint64_t offset);
  // Makes a kept-reserved slot allocatable again.
  void ReleaseReservation(uint64_t offset);

  // Returns the usable size of the allocation at `offset` (its class size, or
  // span payload size), or 0 if the offset is not a live allocation start.
  uint64_t UsableSize(uint64_t offset) const;

  // True iff `offset` is the start of a live (persistent) allocation.
  bool IsAllocated(uint64_t offset) const;

  // Invokes `fn(offset, size)` for every live allocation. Not synchronized
  // against concurrent mutation — recovery/diagnostic use only.
  void ForEachAllocation(const std::function<void(uint64_t, uint64_t)>& fn) const;

  AllocatorStats stats() const;

  uint64_t region_offset() const { return region_offset_; }
  uint64_t region_size() const { return region_size_; }

  // Size class lookup helpers (exposed for tests).
  static int SizeClassFor(uint64_t size);
  static uint64_t ClassSize(int size_class) { return kMinClassSize << size_class; }

 private:
  enum class ChunkState : uint64_t {
    kFree = 0,
    kSlab = 1,
    kSpanStart = 2,
    kSpanCont = 3,
  };

  // Persistent, at the start of every chunk. The bitmap lives directly after
  // the fixed fields.
  struct ChunkHeader {
    uint64_t state;        // ChunkState.
    uint64_t size_class;   // Valid for kSlab.
    uint64_t span_chunks;  // Valid for kSpanStart.
    uint64_t span_bytes;   // Payload bytes, valid for kSpanStart.
    uint64_t bitmap[1];    // Allocation bitmap (kSlab only); flexible-array idiom.
  };

  struct Superblock {
    uint64_t magic;
    uint64_t version;
    uint64_t region_size;
    uint64_t num_chunks;
    uint64_t first_chunk_offset;
    uint64_t checksum;
  };

  static constexpr uint64_t kMagic = 0x4B414D414C4C4F43ull;  // "KAMALLOC"

  Allocator(nvm::Pool* pool, uint64_t region_offset);

  Status Format(uint64_t region_size);
  Status Attach();

  ChunkHeader* HeaderOf(uint64_t chunk_index);
  const ChunkHeader* HeaderOf(uint64_t chunk_index) const;
  uint64_t ChunkOffset(uint64_t chunk_index) const {
    return first_chunk_offset_ + chunk_index * kChunkSize;
  }
  uint64_t ChunkDataOffset(uint64_t chunk_index) const {
    return ChunkOffset(chunk_index) + kChunkHeaderSize;
  }
  static uint64_t SlotsPerChunk(int size_class) {
    return (kChunkSize - kChunkHeaderSize) / ClassSize(size_class);
  }

  // Caller must hold chunks_mu_.
  Result<uint64_t> ClaimSlabChunkLocked(int size_class);
  Result<Reservation> PrepareSpanLocked(uint64_t span_chunks, uint64_t size);

  Result<Reservation> PrepareFromClass(int size_class, uint64_t size);
  // Common slab-free core. Caller must hold class_mu_[cls]. If
  // `keep_reserved`, the slot stays volatilely reserved.
  Status FreeSlabSlotLocked(int cls, uint64_t chunk_index, uint64_t slot, bool keep_reserved);
  void ReclaimChunkIfEmptyLocked(int cls, uint64_t chunk_index);

  nvm::Pool* pool_;
  uint64_t region_offset_ = 0;
  uint64_t region_size_ = 0;
  uint64_t num_chunks_ = 0;
  uint64_t first_chunk_offset_ = 0;

  // Volatile caches, rebuilt on Open(). `used` counts committed + reserved
  // slots; `reserved` shadows the persistent bitmap for in-flight
  // reservations. Guarded by the owning size class's lock for slabs, by
  // chunks_mu_ for span fields.
  struct ChunkInfo {
    uint64_t used = 0;
    std::vector<uint64_t> reserved;       // Lazily sized bitmap.
    uint64_t reserved_span_chunks = 0;    // Two-phase span free bookkeeping.
  };
  std::vector<ChunkInfo> chunk_info_;

  // Per-class lists of chunk indexes with at least one free slot.
  std::array<std::vector<uint64_t>, kNumSizeClasses> partial_chunks_;
  mutable std::array<std::mutex, kNumSizeClasses> class_mu_;

  // Free-chunk bookkeeping (indexes of kFree chunks), kept sorted.
  std::vector<uint64_t> free_chunks_;
  mutable std::mutex chunks_mu_;

  std::atomic<uint64_t> bytes_allocated_{0};
  std::atomic<uint64_t> bytes_reserved_{0};
  std::atomic<uint64_t> alloc_calls_{0};
  std::atomic<uint64_t> free_calls_{0};
};

}  // namespace kamino::alloc

#endif  // SRC_ALLOC_ALLOCATOR_H_
