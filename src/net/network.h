// In-process simulated network.
//
// The paper's chain-replication results were measured over 32 Gbps
// InfiniBand between Azure VMs; what the protocol comparison actually
// depends on is (a) the number of one-way hops each scheme puts on the
// critical path and (b) what work each replica does per hop. This network
// preserves both: every endpoint is a queue, every send is delivered by a
// background thread after a configurable one-way latency, and links can be
// cut or endpoints crashed to drive the failure-handling protocols
// (paper §5.2, §5.3).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace kamino::net {

struct Message {
  uint64_t type = 0;  // Application-defined opcode.
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t view_id = 0;
  std::vector<uint8_t> payload;
};

struct NetworkOptions {
  // One-way delivery latency per message (the paper's l_n).
  uint32_t one_way_latency_us = 10;
};

class Network;

// A node's attachment point. Receive is a blocking queue pop.
class Endpoint {
 public:
  uint64_t node_id() const { return node_id_; }

  // Enqueues a message for delayed delivery. Fails if the destination does
  // not exist; silently drops if the destination or link is down (as a real
  // network would).
  Status Send(uint64_t dst, Message msg);

  // Blocks up to `timeout_ms` for the next message. nullopt on timeout or
  // endpoint shutdown.
  std::optional<Message> Receive(uint64_t timeout_ms);

  // Unblocks all receivers and drops queued messages (local crash).
  void Shutdown();
  // Re-arms the endpoint after Shutdown (reboot).
  void Restart();

  uint64_t messages_sent() const { return sent_; }
  uint64_t messages_received() const { return received_; }

 private:
  friend class Network;
  Endpoint(Network* net, uint64_t node_id) : net_(net), node_id_(node_id) {}

  void Deliver(Message msg);

  Network* net_;
  uint64_t node_id_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> inbox_;
  bool down_ = false;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

class Network {
 public:
  explicit Network(const NetworkOptions& options = NetworkOptions());
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates (or returns the existing) endpoint for `node_id`. Endpoints are
  // owned by the network.
  Endpoint* CreateEndpoint(uint64_t node_id);

  // Failure injection. A down endpoint neither sends nor receives; a cut
  // link drops messages in both directions.
  void SetNodeDown(uint64_t node_id, bool down);
  void CutLink(uint64_t a, uint64_t b, bool cut);

  uint64_t one_way_latency_us() const { return options_.one_way_latency_us; }

 private:
  friend class Endpoint;

  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    Message msg;
    bool operator>(const Pending& other) const { return deliver_at > other.deliver_at; }
  };

  Status Submit(Message msg);
  void DeliveryLoop();

  NetworkOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::unique_ptr<Endpoint>> endpoints_;
  std::set<uint64_t> down_nodes_;
  std::set<std::pair<uint64_t, uint64_t>> cut_links_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  bool stop_ = false;
  std::thread delivery_thread_;
};

}  // namespace kamino::net

#endif  // SRC_NET_NETWORK_H_
