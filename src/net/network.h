// In-process simulated network.
//
// The paper's chain-replication results were measured over 32 Gbps
// InfiniBand between Azure VMs; what the protocol comparison actually
// depends on is (a) the number of one-way hops each scheme puts on the
// critical path and (b) what work each replica does per hop. This network
// preserves both: every endpoint is a queue, every send is delivered by a
// background thread after a configurable one-way latency, and links can be
// cut or endpoints crashed to drive the failure-handling protocols
// (paper §5.2, §5.3).
//
// Beyond clean crashes and clean link cuts, every link can be given a fault
// model (LinkFaults): messages may be dropped, duplicated, or reordered
// (delivered with extra random delay so later sends overtake them), and
// links can be partitioned transiently (CutLinkFor). Faults are decided at
// Submit time by a seeded PRNG (NetworkOptions::fault_seed) so chaos runs
// are reproducible for a fixed seed and send order. Per-endpoint counters
// make chaos runs observable (EndpointStats).
//
// In-flight message semantics (what happens to messages already queued in
// the delivery queue when a failure is injected):
//   - SetNodeDown(dst): messages in flight TO a down node are lost — the
//     drop is re-checked at delivery time, so a message submitted before
//     the node went down still disappears (a crashed machine loses its NIC
//     queues). Messages FROM a node that went down after submitting are
//     delivered: they already left the host.
//   - CutLink(a, b): the cut is symmetric (argument order is irrelevant)
//     and is also re-checked at delivery time: messages in flight on the
//     link when it is cut are lost, exactly as a yanked cable would lose
//     frames already on the wire. Un-cutting never resurrects them.
//   - Endpoint::Shutdown()/Restart() clear the local inbox: messages that
//     were delivered but not yet consumed die with the process.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace kamino::net {

struct Message {
  uint64_t type = 0;  // Application-defined opcode.
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t view_id = 0;
  // Per-sender transmission sequence number, assigned by Endpoint::Send.
  // Monotonic for the lifetime of the endpoint (which survives simulated
  // reboots), so receivers can use (src, seq) to discard network-level
  // duplicates. A retransmission is a *new* transmission and gets a fresh
  // seq; deduplicating retransmitted application payloads is the receiving
  // protocol's job (idempotent handlers keyed on op ids).
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

// Per-link fault model. Probabilities are evaluated independently per
// message at Submit time; `reorder_probability` adds a uniform extra delay
// in (0, reorder_window_us] so that messages sent later can overtake.
struct LinkFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  uint32_t reorder_window_us = 1000;

  bool any() const {
    return drop_probability > 0 || duplicate_probability > 0 || reorder_probability > 0;
  }
};

// Counters per endpoint. sent/dropped/duplicated/reordered count messages
// this endpoint submitted (egress view: a drop anywhere on the path is
// charged to the sender); delivered counts messages that reached this
// endpoint's inbox (ingress view).
struct EndpointStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;     // Fault-model drops + down-node/cut-link losses.
  uint64_t duplicated = 0;  // Extra copies injected by the fault model.
  uint64_t reordered = 0;   // Messages given extra reorder delay.

  EndpointStats& operator+=(const EndpointStats& o) {
    sent += o.sent;
    delivered += o.delivered;
    dropped += o.dropped;
    duplicated += o.duplicated;
    reordered += o.reordered;
    return *this;
  }
};

struct NetworkOptions {
  // One-way delivery latency per message (the paper's l_n).
  uint32_t one_way_latency_us = 10;
  // Seed for the fault-injection PRNG (reproducible chaos schedules).
  uint64_t fault_seed = 0x6b616d696e6f;  // "kamino"
};

class Network;

// A node's attachment point. Receive is a blocking queue pop.
class Endpoint {
 public:
  uint64_t node_id() const { return node_id_; }

  // Enqueues a message for delayed delivery. Fails if the destination does
  // not exist; silently drops if the destination or link is down (as a real
  // network would).
  Status Send(uint64_t dst, Message msg);

  // Blocks up to `timeout_ms` for the next message. nullopt on timeout or
  // endpoint shutdown.
  std::optional<Message> Receive(uint64_t timeout_ms);

  // Unblocks all receivers and drops queued messages (local crash).
  void Shutdown();
  // Re-arms the endpoint after Shutdown (reboot). The transmission sequence
  // counter is NOT reset: seq stays monotonic across reboots so receivers'
  // dedup windows stay valid.
  void Restart();

  uint64_t messages_sent() const { return sent_.load(std::memory_order_relaxed); }
  uint64_t messages_received() const { return received_; }

 private:
  friend class Network;
  Endpoint(Network* net, uint64_t node_id) : net_(net), node_id_(node_id) {}

  void Deliver(Message msg);

  Network* net_;
  uint64_t node_id_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> inbox_;
  bool down_ = false;
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> next_seq_{0};
  uint64_t received_ = 0;
};

class Network {
 public:
  explicit Network(const NetworkOptions& options = NetworkOptions());
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates (or returns the existing) endpoint for `node_id`. Endpoints are
  // owned by the network.
  Endpoint* CreateEndpoint(uint64_t node_id);

  // Failure injection. A down endpoint neither sends nor receives; a cut
  // link drops messages in both directions, including messages already in
  // flight (see the file comment for in-flight semantics). CutLink is
  // symmetric in (a, b).
  void SetNodeDown(uint64_t node_id, bool down);
  void CutLink(uint64_t a, uint64_t b, bool cut);
  // Transient partition: the link heals by itself after `duration_ms`.
  void CutLinkFor(uint64_t a, uint64_t b, uint64_t duration_ms);

  // Per-link fault model (symmetric in (a, b)). Links without an explicit
  // entry use the default faults (initially: no faults).
  void SetLinkFaults(uint64_t a, uint64_t b, const LinkFaults& faults);
  void SetDefaultFaults(const LinkFaults& faults);
  // Removes all fault models and cuts (does not touch down nodes).
  void ClearFaults();

  // Counter snapshots (see EndpointStats for attribution rules).
  EndpointStats StatsFor(uint64_t node_id) const;
  EndpointStats TotalStats() const;

  uint64_t one_way_latency_us() const { return options_.one_way_latency_us; }

 private:
  friend class Endpoint;

  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    Message msg;
    bool operator>(const Pending& other) const { return deliver_at > other.deliver_at; }
  };

  static std::pair<uint64_t, uint64_t> LinkKey(uint64_t a, uint64_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  Status Submit(Message msg);
  // Both require mu_ held.
  bool LinkCutLocked(uint64_t a, uint64_t b, std::chrono::steady_clock::time_point now);
  const LinkFaults& FaultsForLocked(uint64_t a, uint64_t b) const;

  NetworkOptions options_;
  void DeliveryLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::unique_ptr<Endpoint>> endpoints_;
  std::set<uint64_t> down_nodes_;
  // Cut links with a heal deadline; time_point::max() = cut until un-cut.
  std::map<std::pair<uint64_t, uint64_t>, std::chrono::steady_clock::time_point> cut_links_;
  std::map<std::pair<uint64_t, uint64_t>, LinkFaults> link_faults_;
  LinkFaults default_faults_;
  Xoshiro256 fault_rng_;
  std::map<uint64_t, EndpointStats> stats_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  bool stop_ = false;
  std::thread delivery_thread_;
};

}  // namespace kamino::net

#endif  // SRC_NET_NETWORK_H_
