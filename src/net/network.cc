#include "src/net/network.h"

#include <algorithm>

namespace kamino::net {

// --- Endpoint -----------------------------------------------------------------

Status Endpoint::Send(uint64_t dst, Message msg) {
  msg.src = node_id_;
  msg.dst = dst;
  ++sent_;
  return net_->Submit(std::move(msg));
}

std::optional<Message> Endpoint::Receive(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
               [&] { return !inbox_.empty() || down_; });
  if (down_ || inbox_.empty()) {
    return std::nullopt;
  }
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  ++received_;
  return msg;
}

void Endpoint::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    down_ = true;
    inbox_.clear();
  }
  cv_.notify_all();
}

void Endpoint::Restart() {
  std::lock_guard<std::mutex> lk(mu_);
  down_ = false;
  inbox_.clear();
}

void Endpoint::Deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (down_) {
      return;  // Crashed nodes lose in-flight messages.
    }
    inbox_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

// --- Network ------------------------------------------------------------------

Network::Network(const NetworkOptions& options) : options_(options) {
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  delivery_thread_.join();
}

Endpoint* Network::CreateEndpoint(uint64_t node_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = endpoints_.find(node_id);
  if (it != endpoints_.end()) {
    return it->second.get();
  }
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(this, node_id));
  Endpoint* raw = ep.get();
  endpoints_.emplace(node_id, std::move(ep));
  return raw;
}

void Network::SetNodeDown(uint64_t node_id, bool down) {
  Endpoint* ep = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (down) {
      down_nodes_.insert(node_id);
    } else {
      down_nodes_.erase(node_id);
    }
    auto it = endpoints_.find(node_id);
    if (it != endpoints_.end()) {
      ep = it->second.get();
    }
  }
  if (ep != nullptr) {
    if (down) {
      ep->Shutdown();
    } else {
      ep->Restart();
    }
  }
}

void Network::CutLink(uint64_t a, uint64_t b, bool cut) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto key = std::minmax(a, b);
  if (cut) {
    cut_links_.insert({key.first, key.second});
  } else {
    cut_links_.erase({key.first, key.second});
  }
}

Status Network::Submit(Message msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (endpoints_.find(msg.dst) == endpoints_.end()) {
    return Status::NotFound("no such endpoint");
  }
  if (down_nodes_.count(msg.src) != 0 || down_nodes_.count(msg.dst) != 0) {
    return Status::Ok();  // Silently dropped, like a real wire.
  }
  const auto key = std::minmax(msg.src, msg.dst);
  if (cut_links_.count({key.first, key.second}) != 0) {
    return Status::Ok();
  }
  Pending p;
  p.deliver_at = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(options_.one_way_latency_us);
  p.msg = std::move(msg);
  pending_.push(std::move(p));
  cv_.notify_all();
  return Status::Ok();
}

void Network::DeliveryLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (stop_) {
      return;
    }
    if (pending_.empty()) {
      cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (pending_.top().deliver_at > now) {
      cv_.wait_until(lk, pending_.top().deliver_at);
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    // Re-check drop conditions at delivery time (node may have died while
    // the message was in flight).
    if (down_nodes_.count(p.msg.dst) != 0) {
      continue;
    }
    auto it = endpoints_.find(p.msg.dst);
    if (it == endpoints_.end()) {
      continue;
    }
    Endpoint* ep = it->second.get();
    lk.unlock();
    ep->Deliver(std::move(p.msg));
    lk.lock();
  }
}

}  // namespace kamino::net
