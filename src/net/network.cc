#include "src/net/network.h"

#include <algorithm>

namespace kamino::net {

// --- Endpoint -----------------------------------------------------------------

Status Endpoint::Send(uint64_t dst, Message msg) {
  msg.src = node_id_;
  msg.dst = dst;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  sent_.fetch_add(1, std::memory_order_relaxed);
  return net_->Submit(std::move(msg));
}

std::optional<Message> Endpoint::Receive(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
               [&] { return !inbox_.empty() || down_; });
  if (down_ || inbox_.empty()) {
    return std::nullopt;
  }
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  ++received_;
  return msg;
}

void Endpoint::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    down_ = true;
    inbox_.clear();
  }
  cv_.notify_all();
}

void Endpoint::Restart() {
  std::lock_guard<std::mutex> lk(mu_);
  down_ = false;
  inbox_.clear();
}

void Endpoint::Deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (down_) {
      return;  // Crashed nodes lose in-flight messages.
    }
    inbox_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

// --- Network ------------------------------------------------------------------

Network::Network(const NetworkOptions& options)
    : options_(options), fault_rng_(options.fault_seed) {
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  delivery_thread_.join();
}

Endpoint* Network::CreateEndpoint(uint64_t node_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = endpoints_.find(node_id);
  if (it != endpoints_.end()) {
    return it->second.get();
  }
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(this, node_id));
  Endpoint* raw = ep.get();
  endpoints_.emplace(node_id, std::move(ep));
  return raw;
}

void Network::SetNodeDown(uint64_t node_id, bool down) {
  Endpoint* ep = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (down) {
      down_nodes_.insert(node_id);
    } else {
      down_nodes_.erase(node_id);
    }
    auto it = endpoints_.find(node_id);
    if (it != endpoints_.end()) {
      ep = it->second.get();
    }
  }
  if (ep != nullptr) {
    if (down) {
      ep->Shutdown();
    } else {
      ep->Restart();
    }
  }
}

void Network::CutLink(uint64_t a, uint64_t b, bool cut) {
  std::lock_guard<std::mutex> lk(mu_);
  if (cut) {
    cut_links_[LinkKey(a, b)] = std::chrono::steady_clock::time_point::max();
  } else {
    cut_links_.erase(LinkKey(a, b));
  }
}

void Network::CutLinkFor(uint64_t a, uint64_t b, uint64_t duration_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  cut_links_[LinkKey(a, b)] =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(duration_ms);
}

void Network::SetLinkFaults(uint64_t a, uint64_t b, const LinkFaults& faults) {
  std::lock_guard<std::mutex> lk(mu_);
  link_faults_[LinkKey(a, b)] = faults;
}

void Network::SetDefaultFaults(const LinkFaults& faults) {
  std::lock_guard<std::mutex> lk(mu_);
  default_faults_ = faults;
}

void Network::ClearFaults() {
  std::lock_guard<std::mutex> lk(mu_);
  link_faults_.clear();
  default_faults_ = LinkFaults();
  cut_links_.clear();
}

EndpointStats Network::StatsFor(uint64_t node_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = stats_.find(node_id);
  return it == stats_.end() ? EndpointStats() : it->second;
}

EndpointStats Network::TotalStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  EndpointStats total;
  for (const auto& [id, s] : stats_) {
    total += s;
  }
  return total;
}

bool Network::LinkCutLocked(uint64_t a, uint64_t b,
                            std::chrono::steady_clock::time_point now) {
  auto it = cut_links_.find(LinkKey(a, b));
  if (it == cut_links_.end()) {
    return false;
  }
  if (now >= it->second) {
    cut_links_.erase(it);  // Transient partition healed.
    return false;
  }
  return true;
}

const LinkFaults& Network::FaultsForLocked(uint64_t a, uint64_t b) const {
  auto it = link_faults_.find(LinkKey(a, b));
  return it == link_faults_.end() ? default_faults_ : it->second;
}

Status Network::Submit(Message msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (endpoints_.find(msg.dst) == endpoints_.end()) {
    return Status::NotFound("no such endpoint");
  }
  EndpointStats& st = stats_[msg.src];
  ++st.sent;
  const auto now = std::chrono::steady_clock::now();
  if (down_nodes_.count(msg.src) != 0 || down_nodes_.count(msg.dst) != 0 ||
      LinkCutLocked(msg.src, msg.dst, now)) {
    ++st.dropped;
    return Status::Ok();  // Silently dropped, like a real wire.
  }
  const LinkFaults& faults = FaultsForLocked(msg.src, msg.dst);
  if (faults.drop_probability > 0 && fault_rng_.NextDouble() < faults.drop_probability) {
    ++st.dropped;
    return Status::Ok();
  }
  auto deliver_at = now + std::chrono::microseconds(options_.one_way_latency_us);
  if (faults.reorder_probability > 0 &&
      fault_rng_.NextDouble() < faults.reorder_probability) {
    ++st.reordered;
    deliver_at += std::chrono::microseconds(
        1 + fault_rng_.NextBounded(std::max<uint32_t>(faults.reorder_window_us, 1)));
  }
  if (faults.duplicate_probability > 0 &&
      fault_rng_.NextDouble() < faults.duplicate_probability) {
    ++st.duplicated;
    Pending dup;
    // The copy trails the original by a fraction of the latency so both
    // orderings of (original, copy) occur across a run.
    dup.deliver_at =
        deliver_at + std::chrono::microseconds(
                         fault_rng_.NextBounded(options_.one_way_latency_us + 1));
    dup.msg = msg;
    pending_.push(std::move(dup));
  }
  Pending p;
  p.deliver_at = deliver_at;
  p.msg = std::move(msg);
  pending_.push(std::move(p));
  cv_.notify_all();
  return Status::Ok();
}

void Network::DeliveryLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (stop_) {
      return;
    }
    if (pending_.empty()) {
      cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (pending_.top().deliver_at > now) {
      // Copy the deadline: wait_until keeps a reference to it across the
      // unlocked sleep, and a concurrent Submit can reallocate the queue's
      // backing vector, leaving a reference into pending_ dangling.
      const auto deliver_at = pending_.top().deliver_at;
      cv_.wait_until(lk, deliver_at);
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    // Re-check drop conditions at delivery time (the node may have died or
    // the link may have been cut while the message was in flight — in-flight
    // messages are lost in both cases, see the header comment).
    if (down_nodes_.count(p.msg.dst) != 0 ||
        LinkCutLocked(p.msg.src, p.msg.dst, now)) {
      ++stats_[p.msg.src].dropped;
      continue;
    }
    auto it = endpoints_.find(p.msg.dst);
    if (it == endpoints_.end()) {
      continue;
    }
    Endpoint* ep = it->second.get();
    ++stats_[p.msg.dst].delivered;
    lk.unlock();
    ep->Deliver(std::move(p.msg));
    lk.lock();
  }
}

}  // namespace kamino::net
