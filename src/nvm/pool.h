// Emulated byte-addressable non-volatile memory.
//
// The paper evaluates on DRAM standing in for NVDIMM (§7: "We use DRAM to
// emulate NVM"). We go one step further and give the emulated NVM an explicit
// *persistence model* so that recovery code can actually be tested:
//
//   - CPU stores land in the working image immediately (they are "in cache").
//   - `Flush(addr, len)` stages a snapshot of the covered cache lines
//     (emulating CLWB issued on each line).
//   - `Drain()` makes all staged lines durable (emulating SFENCE).
//   - `Persist(addr, len)` = Flush + Drain.
//
// When `crash_sim` is enabled the pool keeps a second, "persistent" image.
// `Crash(...)` rebuilds the working image from the persistent one, discarding
// stores that were never flushed — exactly what a power failure does to data
// sitting in the cache hierarchy. The `kEvictRandomly` mode additionally lets
// each dirty-but-unflushed line survive with probability p, modelling
// arbitrary cache evictions; crash-consistent code must tolerate both.
//
// Pools can also inject per-line flush latency and per-fence latency to model
// NVM technologies slower than DRAM (§7 notes Kamino-Tx's advantage grows as
// media slows down).

#ifndef SRC_NVM_POOL_H_
#define SRC_NVM_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/cacheline.h"
#include "src/common/status.h"
#include "src/nvm/persist_hook.h"

namespace kamino::nvm {

struct PoolOptions {
  // Total pool size in bytes. Rounded up to a cache-line multiple.
  uint64_t size = 64ull << 20;

  // Backing file path. Empty means anonymous (volatile, test-only) memory.
  std::string path;

  // Enable the persistent shadow image + Crash() support.
  bool crash_sim = false;

  // Injected latency, in nanoseconds, charged per cache line flushed and per
  // drain (fence). Zero disables injection.
  uint32_t flush_latency_ns = 0;
  uint32_t drain_latency_ns = 0;

  // When false, Flush/Drain skip the stats atomics entirely so benchmarks
  // measure the engine rather than the emulator's bookkeeping. Crash-sim
  // pools keep their correctness machinery regardless; only counters are
  // affected.
  bool track_stats = true;

  // When true, injected latency yields the CPU (sleep) instead of spinning.
  // A spinning emulated NVM stall occupies a core, which makes applier
  // scaling unmeasurable on hosts with fewer cores than threads; sleeping
  // models a stalled-but-idle memory-controller wait instead. Spin remains
  // the default because it preserves cache/TLB behaviour for latency
  // microbenchmarks.
  bool sleep_latency = false;

  // Attached to every PersistEvent this pool emits (PersistEvent::shard).
  // A sharded store names each shard's pools (e.g. "shard3") so crash-point
  // observers can qualify site tags per shard ("shard3/log/commit-record")
  // — including events from applier/reconciler threads, which carry no
  // thread-local shard identity. Empty = unsharded.
  std::string site_prefix;
};

// How Crash() treats dirty lines that were never flushed.
enum class CrashMode {
  // All unflushed lines are lost (clean power-cut model).
  kDropUnflushed,
  // Each dirty unflushed line independently survives with probability
  // `survive_prob` — models cache evictions that happened to write the line
  // back before the failure. Crash-consistent code must be correct for every
  // outcome, so property tests sweep seeds.
  kEvictRandomly,
};

struct PoolStats {
  uint64_t flush_calls = 0;
  uint64_t lines_flushed = 0;
  uint64_t drain_calls = 0;
  uint64_t bytes_persisted = 0;
};

// Per-PersistSiteScope breakdown of flush/drain activity (track_stats only).
// Answers "which persistence boundary pays the fences?" — the measurement
// behind the paper's minimum-cache-flushes claim and DESIGN.md §8's fence
// accounting.
struct PoolSiteStats {
  std::string site;
  uint64_t flush_calls = 0;
  uint64_t lines_flushed = 0;
  uint64_t drain_calls = 0;
};

class Pool {
 public:
  // Creates a new zero-initialized pool (truncates any existing backing file).
  static Result<std::unique_ptr<Pool>> Create(const PoolOptions& options);

  // Maps an existing backing file (options.path required; options.size is
  // ignored — the file's size is used). The cross-process durability path:
  // data persisted before the previous process exited is visible here.
  static Result<std::unique_ptr<Pool>> OpenFile(const PoolOptions& options);

  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }
  uint64_t size() const { return size_; }
  bool crash_sim_enabled() const { return crash_sim_; }
  const std::string& site_prefix() const { return site_prefix_; }

  // Offset <-> pointer translation. Offsets are the stable persistent
  // representation (pointers change across re-open).
  uint64_t OffsetOf(const void* p) const {
    auto addr = reinterpret_cast<uintptr_t>(p);
    auto lo = reinterpret_cast<uintptr_t>(base_);
    return static_cast<uint64_t>(addr - lo);
  }
  void* At(uint64_t offset) { return base_ + offset; }
  const void* At(uint64_t offset) const { return base_ + offset; }
  bool Contains(const void* p) const {
    auto addr = reinterpret_cast<uintptr_t>(p);
    auto lo = reinterpret_cast<uintptr_t>(base_);
    return addr >= lo && addr < lo + size_;
  }

  // Installs (or, with nullptr, removes) the persistence-event observer.
  // Every subsequent Flush/Drain first consults the observer, which may veto
  // the event's durability effect (see persist_hook.h). The observer must
  // outlive its installation. Install/remove while no other thread is
  // flushing: the pointer itself is atomic, but observers usually expect to
  // see a complete event stream.
  void SetPersistenceObserver(PersistenceObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  PersistenceObserver* persistence_observer() const {
    return observer_.load(std::memory_order_acquire);
  }

  // Persistence primitives.
  void Flush(const void* addr, uint64_t len);
  void Drain();
  void Persist(const void* addr, uint64_t len) {
    Flush(addr, len);
    Drain();
  }

  // Persists an aligned 8-byte store. The store itself must already have been
  // performed by the caller; this is the ordering point.
  void PersistU64(const uint64_t* addr) { Persist(addr, sizeof(uint64_t)); }

  // Crash simulation. Requires crash_sim. Discards (per `mode`) all stores
  // that were not persisted, as a power failure would. After Crash() the
  // working image is what recovery code would see at next startup.
  Status Crash(CrashMode mode = CrashMode::kDropUnflushed, uint64_t seed = 0,
               double survive_prob = 0.5);

  // Test hook: returns true iff the byte ranges [offset, offset+len) are
  // identical in the working and persistent images (i.e. fully persisted).
  // Requires crash_sim.
  bool IsPersisted(uint64_t offset, uint64_t len) const;

  PoolStats stats() const {
    PoolStats s;
    s.flush_calls = flush_calls_.load(std::memory_order_relaxed);
    s.lines_flushed = lines_flushed_.load(std::memory_order_relaxed);
    s.drain_calls = drain_calls_.load(std::memory_order_relaxed);
    s.bytes_persisted = bytes_persisted_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    flush_calls_.store(0, std::memory_order_relaxed);
    lines_flushed_.store(0, std::memory_order_relaxed);
    drain_calls_.store(0, std::memory_order_relaxed);
    bytes_persisted_.store(0, std::memory_order_relaxed);
    for (auto& cell : site_cells_) {
      cell.flush_calls.store(0, std::memory_order_relaxed);
      cell.lines_flushed.store(0, std::memory_order_relaxed);
      cell.drain_calls.store(0, std::memory_order_relaxed);
    }
  }

  // Snapshot of the per-site counters, sorted by site name (deterministic
  // output for benches/JSON). Empty when track_stats is off.
  std::vector<PoolSiteStats> site_stats() const;

  // Bench/test hook: re-aims the emulated persistence cost of a live pool —
  // e.g. load a benchmark dataset at full speed, then measure with injected
  // latency. `sleep` chooses overlappable stalls over spinning (see
  // PoolOptions::sleep_latency).
  void set_latency(uint32_t flush_ns, uint32_t drain_ns, bool sleep) {
    flush_latency_ns_.store(flush_ns, std::memory_order_relaxed);
    drain_latency_ns_.store(drain_ns, std::memory_order_relaxed);
    sleep_latency_.store(sleep, std::memory_order_relaxed);
  }

 private:
  Pool() = default;

  Status Init(const PoolOptions& options);
  void SpinFor(uint32_t ns) const;

  // Fixed-capacity, lock-free open-addressed table of per-site counters.
  // Site tags are string literals; cells are claimed once with CAS and keyed
  // by string content (identical literals from different TUs may have
  // distinct addresses). Returns nullptr if the table is full.
  static constexpr uint64_t kMaxSiteCells = 64;
  struct SiteCell {
    std::atomic<const char*> tag{nullptr};
    std::atomic<uint64_t> flush_calls{0};
    std::atomic<uint64_t> lines_flushed{0};
    std::atomic<uint64_t> drain_calls{0};
  };
  SiteCell* SiteCellFor(const char* tag);

  uint8_t* base_ = nullptr;
  uint64_t size_ = 0;
  bool file_backed_ = false;
  int fd_ = -1;
  bool crash_sim_ = false;
  // Atomics so set_latency() can re-aim a live pool (bench hook) without
  // racing the flush/drain paths; always accessed relaxed.
  std::atomic<uint32_t> flush_latency_ns_{0};
  std::atomic<uint32_t> drain_latency_ns_{0};
  bool track_stats_ = true;
  std::atomic<bool> sleep_latency_{false};
  std::string site_prefix_;

  // Crash-sim state. `persistent_` mirrors `base_`; `staged_` holds snapshots
  // of flushed-but-not-fenced lines keyed by line offset. Guarded by `mu_`
  // (crash-sim mode trades speed for checkability).
  std::unique_ptr<uint8_t[]> persistent_;
  std::unordered_map<uint64_t, std::array<uint8_t, kCacheLineSize>> staged_;
  mutable std::mutex mu_;

  std::atomic<uint64_t> flush_calls_{0};
  std::atomic<uint64_t> lines_flushed_{0};
  std::atomic<uint64_t> drain_calls_{0};
  std::atomic<uint64_t> bytes_persisted_{0};
  std::array<SiteCell, kMaxSiteCells> site_cells_;

  std::atomic<PersistenceObserver*> observer_{nullptr};
};

}  // namespace kamino::nvm

#endif  // SRC_NVM_POOL_H_
