// Persistence-event hook: the observation point for crash-point enumeration.
//
// Every durability-affecting action a Pool performs — staging cache lines on
// Flush (CLWB) and making staged lines durable on Drain (SFENCE) — can be
// observed, and vetoed, by a PersistenceObserver installed on the pool. The
// observer sees one event per flush/drain with the *site tag* of the
// innermost PersistSiteScope on the calling thread, so a test harness can
// answer "which persistence boundary is this?" without stack inspection.
//
// Vetoing (returning false from OnPersistEvent) suppresses the event's
// durability effect entirely: a vetoed Flush stages nothing, a vetoed Drain
// persists nothing. The working image is never affected — execution continues
// exactly as before, only durability changes. That is precisely the semantics
// of a power failure at that boundary, and it is what
// testing::CrashScheduler builds on: veto every event from ordinal k onward,
// let the workload run, then Pool::Crash() rewinds to what was durable at
// event k. Site-selective vetoes model missing-flush/missing-drain bugs
// ("what if this engine forgot this fence?") without touching engine code.
//
// One observer may be shared by several pools (main + backup): a machine
// loses power as a whole, so the crash ordinal must be global across them.
// Ordinal assignment therefore lives in the observer, not the pool.

#ifndef SRC_NVM_PERSIST_HOOK_H_
#define SRC_NVM_PERSIST_HOOK_H_

#include <cstdint>

namespace kamino::nvm {

class Pool;

enum class PersistEventKind : uint8_t {
  kFlush,  // Cache lines staged for write-back (CLWB).
  kDrain,  // Staged lines made durable (SFENCE).
};

inline const char* PersistEventKindName(PersistEventKind kind) {
  return kind == PersistEventKind::kFlush ? "flush" : "drain";
}

// Innermost active site tag on this thread; see PersistSiteScope.
const char* CurrentPersistSite();

struct PersistEvent {
  PersistEventKind kind = PersistEventKind::kFlush;
  // Innermost PersistSiteScope tag on the calling thread ("untagged" when no
  // scope is active). Always a string literal — safe to retain.
  const char* site = nullptr;
  // The emitting pool's PoolOptions::site_prefix ("" when unset). A sharded
  // store gives every shard's pools a distinct prefix (e.g. "shard3"), so one
  // observer over many shards can attribute each event to its shard without
  // threading shard identity through every engine thread. Points at the
  // pool's own string — valid for the duration of the callback.
  const char* shard = "";
  // Flush only: the covered byte range (pool offset). Zero for drains.
  uint64_t offset = 0;
  uint64_t len = 0;
  // The pool the event fired on (events from main and backup pools share one
  // observer and one ordinal space).
  const Pool* pool = nullptr;
};

// Installed on a Pool with Pool::SetPersistenceObserver. Implementations must
// be thread-safe: engines flush from client and applier threads concurrently.
class PersistenceObserver {
 public:
  virtual ~PersistenceObserver() = default;

  // Called before the event's durability effect takes place. Return true to
  // let it proceed, false to suppress it (nothing is staged/persisted and no
  // stats are charged). Must not call back into the pool.
  virtual bool OnPersistEvent(const PersistEvent& event) = 0;
};

namespace internal {
// The per-thread site stack is just the innermost tag plus a saved previous
// value in each RAII scope — no allocation, no depth limit.
inline thread_local const char* tls_persist_site = nullptr;
}  // namespace internal

inline const char* CurrentPersistSite() {
  const char* s = internal::tls_persist_site;
  return s != nullptr ? s : "untagged";
}

// RAII site tag. Instantiate around a persistence boundary so every
// flush/drain issued underneath carries `site`:
//
//   PersistSiteScope scope("log/append-intent");
//   pool->Flush(rec, 64);
//   pool->Drain();
//
// Scopes nest; the innermost wins (a backup-store apply inside an applier
// scope reports the store's more specific tag). `site` must be a string
// literal (or otherwise outlive the scope).
class PersistSiteScope {
 public:
  explicit PersistSiteScope(const char* site) : prev_(internal::tls_persist_site) {
    internal::tls_persist_site = site;
  }
  ~PersistSiteScope() { internal::tls_persist_site = prev_; }

  PersistSiteScope(const PersistSiteScope&) = delete;
  PersistSiteScope& operator=(const PersistSiteScope&) = delete;

 private:
  const char* prev_;
};

}  // namespace kamino::nvm

#endif  // SRC_NVM_PERSIST_HOOK_H_
