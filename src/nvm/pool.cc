#include "src/nvm/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/random.h"

namespace kamino::nvm {

Result<std::unique_ptr<Pool>> Pool::Create(const PoolOptions& options) {
  if (options.size == 0) {
    return Status::InvalidArgument("pool size must be non-zero");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  Status st = pool->Init(options);
  if (!st.ok()) {
    return st;
  }
  return pool;
}

Result<std::unique_ptr<Pool>> Pool::OpenFile(const PoolOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("OpenFile requires a backing file path");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->crash_sim_ = false;  // Shadow-image state cannot outlive a process.
  pool->flush_latency_ns_ = options.flush_latency_ns;
  pool->drain_latency_ns_ = options.drain_latency_ns;
  pool->track_stats_ = options.track_stats;
  pool->sleep_latency_ = options.sleep_latency;
  pool->site_prefix_ = options.site_prefix;

  pool->fd_ = ::open(options.path.c_str(), O_RDWR);
  if (pool->fd_ < 0) {
    return Status::IoError("open(" + options.path + ") failed");
  }
  struct stat st{};
  if (::fstat(pool->fd_, &st) != 0 || st.st_size <= 0) {
    return Status::IoError("fstat failed or empty file");
  }
  pool->size_ = static_cast<uint64_t>(st.st_size);
  void* mem =
      ::mmap(nullptr, pool->size_, PROT_READ | PROT_WRITE, MAP_SHARED, pool->fd_, 0);
  if (mem == MAP_FAILED) {
    return Status::IoError("mmap failed");
  }
  pool->base_ = static_cast<uint8_t*>(mem);
  pool->file_backed_ = true;
  return pool;
}

Status Pool::Init(const PoolOptions& options) {
  size_ = CacheLineCeil(options.size);
  crash_sim_ = options.crash_sim;
  flush_latency_ns_ = options.flush_latency_ns;
  drain_latency_ns_ = options.drain_latency_ns;
  track_stats_ = options.track_stats;
  sleep_latency_ = options.sleep_latency;
  site_prefix_ = options.site_prefix;

  if (!options.path.empty()) {
    fd_ = ::open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      return Status::IoError("open(" + options.path + ") failed");
    }
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::IoError("ftruncate failed");
    }
    void* mem = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (mem == MAP_FAILED) {
      ::close(fd_);
      fd_ = -1;
      return Status::IoError("mmap failed");
    }
    base_ = static_cast<uint8_t*>(mem);
    file_backed_ = true;
  } else {
    void* mem =
        ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      return Status::OutOfMemory("anonymous mmap failed");
    }
    base_ = static_cast<uint8_t*>(mem);
  }

  if (crash_sim_) {
    persistent_ = std::make_unique<uint8_t[]>(size_);
    std::memset(persistent_.get(), 0, size_);
  }
  return Status::Ok();
}

Pool::~Pool() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Pool::SpinFor(uint32_t ns) const {
  if (ns == 0) {
    return;
  }
  if (sleep_latency_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait: models the synchronous stall of a slow NVM write-back.
  }
}

void Pool::Flush(const void* addr, uint64_t len) {
  if (len == 0) {
    return;
  }
  if (PersistenceObserver* obs = observer_.load(std::memory_order_acquire)) {
    PersistEvent ev;
    ev.kind = PersistEventKind::kFlush;
    ev.site = CurrentPersistSite();
    ev.shard = site_prefix_.c_str();
    ev.offset = OffsetOf(addr);
    ev.len = len;
    ev.pool = this;
    if (!obs->OnPersistEvent(ev)) {
      return;  // Vetoed: nothing staged, as if power failed before the CLWB.
    }
  }
  const uint64_t start = CacheLineFloor(OffsetOf(addr));
  const uint64_t end = CacheLineCeil(OffsetOf(addr) + len);
  const uint64_t lines = (end - start) / kCacheLineSize;

  if (track_stats_) {
    flush_calls_.fetch_add(1, std::memory_order_relaxed);
    lines_flushed_.fetch_add(lines, std::memory_order_relaxed);
    if (SiteCell* cell = SiteCellFor(CurrentPersistSite())) {
      cell->flush_calls.fetch_add(1, std::memory_order_relaxed);
      cell->lines_flushed.fetch_add(lines, std::memory_order_relaxed);
    }
  }

  if (crash_sim_) {
    std::lock_guard<std::mutex> guard(mu_);
    for (uint64_t off = start; off < end; off += kCacheLineSize) {
      auto& slot = staged_[off];
      std::memcpy(slot.data(), base_ + off, kCacheLineSize);
    }
  }
  SpinFor(static_cast<uint32_t>(lines * flush_latency_ns_.load(std::memory_order_relaxed)));
}

void Pool::Drain() {
  if (PersistenceObserver* obs = observer_.load(std::memory_order_acquire)) {
    PersistEvent ev;
    ev.kind = PersistEventKind::kDrain;
    ev.site = CurrentPersistSite();
    ev.shard = site_prefix_.c_str();
    ev.pool = this;
    if (!obs->OnPersistEvent(ev)) {
      return;  // Vetoed: staged lines stay undurable, as if the fence never ran.
    }
  }
  if (track_stats_) {
    drain_calls_.fetch_add(1, std::memory_order_relaxed);
    if (SiteCell* cell = SiteCellFor(CurrentPersistSite())) {
      cell->drain_calls.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (crash_sim_) {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& [off, snapshot] : staged_) {
      std::memcpy(persistent_.get() + off, snapshot.data(), kCacheLineSize);
      if (track_stats_) {
        bytes_persisted_.fetch_add(kCacheLineSize, std::memory_order_relaxed);
      }
    }
    staged_.clear();
  }
  SpinFor(drain_latency_ns_.load(std::memory_order_relaxed));
}

Status Pool::Crash(CrashMode mode, uint64_t seed, double survive_prob) {
  if (!crash_sim_) {
    return Status::NotSupported("Crash() requires PoolOptions::crash_sim");
  }
  std::lock_guard<std::mutex> guard(mu_);
  // Flushed-but-unfenced lines are lost either way: CLWB without a fence
  // gives no durability ordering guarantee we can rely on here; dropping them
  // is the adversarial (and allowed) outcome.
  staged_.clear();

  if (mode == CrashMode::kEvictRandomly) {
    // Lines that differ between images were dirty in "cache". Each one may
    // have been written back by an eviction before the failure.
    Xoshiro256 rng(seed);
    for (uint64_t off = 0; off < size_; off += kCacheLineSize) {
      if (std::memcmp(base_ + off, persistent_.get() + off, kCacheLineSize) != 0) {
        if (rng.NextDouble() < survive_prob) {
          std::memcpy(persistent_.get() + off, base_ + off, kCacheLineSize);
        }
      }
    }
  }
  std::memcpy(base_, persistent_.get(), size_);
  return Status::Ok();
}

Pool::SiteCell* Pool::SiteCellFor(const char* tag) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the tag's content.
  for (const char* p = tag; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ull;
  }
  for (uint64_t probe = 0; probe < kMaxSiteCells; ++probe) {
    SiteCell& cell = site_cells_[(h + probe) % kMaxSiteCells];
    const char* cur = cell.tag.load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (cell.tag.compare_exchange_strong(expected, tag, std::memory_order_acq_rel)) {
        return &cell;
      }
      cur = expected;
    }
    if (cur == tag || std::strcmp(cur, tag) == 0) {
      return &cell;
    }
  }
  return nullptr;  // Table full: the site goes uncounted rather than blocking.
}

std::vector<PoolSiteStats> Pool::site_stats() const {
  std::vector<PoolSiteStats> out;
  for (const auto& cell : site_cells_) {
    const char* tag = cell.tag.load(std::memory_order_acquire);
    if (tag == nullptr) {
      continue;
    }
    PoolSiteStats s;
    s.site = tag;
    s.flush_calls = cell.flush_calls.load(std::memory_order_relaxed);
    s.lines_flushed = cell.lines_flushed.load(std::memory_order_relaxed);
    s.drain_calls = cell.drain_calls.load(std::memory_order_relaxed);
    if (s.flush_calls != 0 || s.lines_flushed != 0 || s.drain_calls != 0) {
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PoolSiteStats& a, const PoolSiteStats& b) { return a.site < b.site; });
  return out;
}

bool Pool::IsPersisted(uint64_t offset, uint64_t len) const {
  if (!crash_sim_) {
    return true;
  }
  std::lock_guard<std::mutex> guard(mu_);
  return std::memcmp(base_ + offset, persistent_.get() + offset, len) == 0;
}

}  // namespace kamino::nvm
