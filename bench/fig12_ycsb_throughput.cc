// Figure 12 — "YCSB throughput with Kamino-Tx-Simple and undo-logging
// (Intel's NVML) as the number of threads vary from two to eight."
// Workloads A, B, C, D, F; the paper reports up to 9.5x for write-heavy
// mixes and parity on the read-only C.

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

void BM_Fig12(::benchmark::State& state, txn::EngineType engine,
              workload::YcsbWorkload workload, int threads) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  auto bundle = KvBundle::Make(engine, nkeys);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res = RunYcsbOnBundle(bundle.get(), workload, threads,
                                   ops / static_cast<uint64_t>(threads), nkeys);
    SetYcsbCounters(state, res);
  }
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kC,
        workload::YcsbWorkload::kD, workload::YcsbWorkload::kF}) {
    for (int threads : {2, 4, 8}) {
      for (txn::EngineType engine :
           {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
        std::string name = std::string("Fig12/") + workload::YcsbWorkloadName(w) + "/" +
                           EngineLabel(engine) + "/threads:" + std::to_string(threads);
        ::benchmark::RegisterBenchmark(name.c_str(),
                                       [engine, w, threads](::benchmark::State& s) {
                                         BM_Fig12(s, engine, w, threads);
                                       })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
