// Figure 1 — motivation: "Avg. throughput for running YCSB workloads (A-F)
// and TPCC benchmark suite against MySQL", no-logging vs undo-logging,
// 4 client threads. The paper reports logging overheads of 50-250% on the
// write-heavy mixes and near zero on the read-heavy ones.
//
// Substitution: MySQL/InnoDB is represented by this library's KV store (and
// TPC-C-lite) with the NoLoggingEngine vs the NVML-faithful UndoLogEngine —
// the same atomicity-tax comparison on our stack.

#include "bench/bench_util.h"
#include "src/workload/tpcc_lite.h"

namespace kamino::bench {
namespace {

constexpr int kThreads = 4;  // Figure 1's client configuration.

void BM_YcsbFig1(::benchmark::State& state, txn::EngineType engine,
                 workload::YcsbWorkload workload) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  auto bundle = KvBundle::Make(engine, nkeys);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res =
        RunYcsbOnBundle(bundle.get(), workload, kThreads, ops / kThreads, nkeys);
    SetYcsbCounters(state, res);
  }
}

void BM_TpccFig1(::benchmark::State& state, txn::EngineType engine) {
  auto bundle = KvBundle::Make(engine, 1);
  workload::TpccLite::Options topts;
  topts.items = 1000;
  topts.customers = 300;
  auto tpcc = std::move(workload::TpccLite::Create(bundle->mgr.get(), topts).value());
  if (!tpcc->Load().ok()) {
    state.SkipWithError("tpcc load failed");
    return;
  }
  const uint64_t txns_per_thread = EnvOr("KAMINO_BENCH_TPCC_TXNS", 2'000);
  for (auto _ : state) {
    const nvm::PoolStats pool_before = bundle->heap->pool()->stats();
    const txn::EngineStats engine_before = bundle->mgr->engine()->stats();
    const uint64_t start = stats::NowNanos();
    std::vector<std::thread> workers;
    std::atomic<uint64_t> failed{0};
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(17 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < txns_per_thread; ++i) {
          if (!tpcc->RunOne(rng).ok()) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
    const nvm::PoolStats pool_after = bundle->heap->pool()->stats();
    const txn::EngineStats engine_after = bundle->mgr->engine()->stats();
    const double txns =
        static_cast<double>(engine_after.committed - engine_before.committed);
    state.counters["Ktxn_per_sec"] =
        static_cast<double>(txns_per_thread) * kThreads / secs / 1000.0;
    state.counters["errors"] = static_cast<double>(failed.load());
    state.counters["flushes_per_txn"] =
        txns > 0
            ? static_cast<double>(pool_after.flush_calls - pool_before.flush_calls) / txns
            : 0;
    state.counters["drains_per_txn"] =
        txns > 0
            ? static_cast<double>(pool_after.drain_calls - pool_before.drain_calls) / txns
            : 0;
  }
}

void RegisterAll() {
  for (txn::EngineType engine : {txn::EngineType::kNoLogging, txn::EngineType::kUndoLog}) {
    for (workload::YcsbWorkload w :
         {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kC,
          workload::YcsbWorkload::kD, workload::YcsbWorkload::kF}) {
      std::string name = std::string("Fig01/") + workload::YcsbWorkloadName(w) + "/" +
                         EngineLabel(engine);
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [engine, w](::benchmark::State& s) {
                                       BM_YcsbFig1(s, engine, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
    std::string name = std::string("Fig01/TPC-C/") + EngineLabel(engine);
    ::benchmark::RegisterBenchmark(
        name.c_str(), [engine](::benchmark::State& s) { BM_TpccFig1(s, engine); })
        ->Unit(::benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
