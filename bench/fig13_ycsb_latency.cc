// Figure 13 — "YCSB latency with Kamino-Tx-Simple and undo-logging (Intel's
// NVML)": average operation latency for YCSB A-F plus TPC-C, single client.
// The paper reports Kamino-Tx up to 2.33x faster on write-intensive mixes
// and parity on the read-only C.

#include "bench/bench_util.h"
#include "src/workload/tpcc_lite.h"

namespace kamino::bench {
namespace {

void BM_Fig13Ycsb(::benchmark::State& state, txn::EngineType engine,
                  workload::YcsbWorkload workload) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  auto bundle = KvBundle::Make(engine, nkeys);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res = RunYcsbOnBundle(bundle.get(), workload, /*threads=*/1, ops, nkeys);
    SetYcsbCounters(state, res);
  }
}

void BM_Fig13Tpcc(::benchmark::State& state, txn::EngineType engine) {
  auto bundle = KvBundle::Make(engine, 1);
  workload::TpccLite::Options topts;
  topts.items = 1000;
  topts.customers = 300;
  auto tpcc = std::move(workload::TpccLite::Create(bundle->mgr.get(), topts).value());
  if (!tpcc->Load().ok()) {
    state.SkipWithError("tpcc load failed");
    return;
  }
  const uint64_t txns = EnvOr("KAMINO_BENCH_TPCC_TXNS", 2'000);
  for (auto _ : state) {
    stats::LatencyHistogram hist;
    Xoshiro256 rng(23);
    for (uint64_t i = 0; i < txns; ++i) {
      stats::ScopedLatency timer(&hist);
      (void)tpcc->RunOne(rng);
    }
    state.counters["mean_us"] = hist.MeanNs() / 1000.0;
    state.counters["p99_us"] = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  }
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kC,
        workload::YcsbWorkload::kD, workload::YcsbWorkload::kF}) {
    for (txn::EngineType engine :
         {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
      std::string name = std::string("Fig13/") + workload::YcsbWorkloadName(w) + "/" +
                         EngineLabel(engine);
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [engine, w](::benchmark::State& s) {
                                       BM_Fig13Ycsb(s, engine, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
    std::string name = std::string("Fig13/TPC-C/") + EngineLabel(engine);
    ::benchmark::RegisterBenchmark(
        name.c_str(), [engine](::benchmark::State& s) { BM_Fig13Tpcc(s, engine); })
        ->Unit(::benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
