// Commit critical-path benchmark (ISSUE 4 acceptance benchmark).
//
// Measures what a client thread actually waits on between "update issued"
// and "commit durable": the intent-log fences. After the dataset loads at
// full speed, the main pool injects a per-drain latency
// (KAMINO_BENCH_DRAIN_NS) as an overlappable sleep — the same modelling
// choice as applier_scaling's backup drains: the stall is the device's, not
// the core's, so concurrent drains overlap and other threads keep running
// during one. The sweep compares the pre-change fence schedule
// (LogOptions::legacy_fences, built into the binary precisely so the
// baseline is measured and not remembered) against the
// striped/elided/group-committed one across all engines and a client-thread
// sweep on YCSB-A.
//
// Group commit note: with sleeping drains the leader's own drain IS the
// coalescing window — committers that arrive while the current leader's
// drain is in flight queue behind it and the next leader covers them all
// with one drain (pipelined group commit). KAMINO_BENCH_GC_WINDOW_NS
// therefore defaults to 0; a nonzero value additionally makes the leader
// wait before draining, which only pays off when drains are cheap relative
// to the kernel's sleep granularity (~60us on small hosts).
//
// Epoch rows (LogOptions::epoch_commit) model the persist-behind client the
// pipeline is built for: updates go through KvStore::UpdateAsync and their
// latency is recorded at DRAM-commit return, while acknowledgements ride
// behind on the epoch durability tickets, bounded to KAMINO_BENCH_ACK_WINDOW
// (default 8) outstanding per client — a full window stalls the client on
// the oldest ticket's drain, and every issued update is settled durable
// before the run's clock stops. The ack-side stall is reported per row as
// ack_stall_p50/p99_us. Crash safety of exactly this window (acked commits
// survive, unacked ones never half-apply) is what
// tests/crash_points/crash_points_epoch_test.cc enumerates.
//
// Emits BENCH_commit_path.json. The summary block records the acceptance
// numbers: Kamino drains-per-update-txn at 8 clients, legacy vs new vs
// epoch, the relative legacy->new reduction (gate: >= 0.30), the update
// p50s, and the epoch-vs-no-logging p50 ratio (epoch gates: drains/txn <=
// 1.5 and p50 <= 1.5x no-logging, enforced by the "epoch" checker in
// tools/check_bench_regression.py). Read transactions never take a log slot
// (zero drains), so per-txn accounting divides by the number of UPDATE
// transactions; all fence schedules are divided the same way, so the
// reduction is unaffected by the read half of YCSB-A.
//
// Not a google-benchmark binary: the sweep is the product, and the JSON
// schema feeds tools/check_bench_regression.py.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/heap/heap.h"
#include "src/kv/kv_store.h"
#include "src/stats/histogram.h"
#include "src/txn/tx_manager.h"
#include "src/workload/ycsb.h"

namespace {

using kamino::Result;
using kamino::Status;
using kamino::StatusCode;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

// Which commit-path fence schedule a row runs under; all three regimes are
// built into the binary (LogOptions::legacy_fences / epoch_commit).
enum class FenceRegime { kLegacy, kNew, kEpoch };

const char* FenceName(FenceRegime f) {
  switch (f) {
    case FenceRegime::kLegacy:
      return "legacy";
    case FenceRegime::kNew:
      return "new";
    case FenceRegime::kEpoch:
      return "epoch";
  }
  return "unknown";
}

struct EngineRow {
  const char* label;
  kamino::txn::EngineType engine;
  FenceRegime fences;
};

struct RunResult {
  std::string engine;
  const char* fences = "new";
  int clients = 0;
  double ops_per_sec = 0;
  uint64_t update_txns = 0;
  double update_p50_us = 0;
  double update_p99_us = 0;
  // Epoch rows only: the client-side stall per acknowledgement
  // (WaitCommitDurable on the oldest outstanding ticket once the window
  // fills) — the persist-behind cost that moved off the commit return path.
  double ack_stall_p50_us = 0;
  double ack_stall_p99_us = 0;
  double flushes_per_txn = 0;
  double drains_per_txn = 0;
  uint64_t blocked_acquires = 0;
  uint64_t group_commit_commits = 0;
  uint64_t group_commit_leader_drains = 0;
  // Main-pool drain deltas per PersistSiteScope, per update txn.
  std::map<std::string, double> site_drains_per_txn;
};

RunResult RunOnce(const EngineRow& row, int clients, uint64_t nkeys,
                  uint64_t ops_per_thread, uint64_t value_size, uint32_t drain_ns,
                  uint64_t gc_window_ns, uint64_t ack_window) {
  kamino::heap::HeapOptions hopts;
  hopts.pool_size = nkeys * value_size * 3 + (96ull << 20);
  hopts.flush_latency_ns = 0;  // Isolate the fences: only drains cost time.
  auto heap = std::move(kamino::heap::Heap::Create(hopts).value());

  kamino::txn::TxManagerOptions mopts;
  mopts.engine = row.engine;
  mopts.lock.timeout_ms = 30'000;
  mopts.log.legacy_fences = row.fences == FenceRegime::kLegacy;
  mopts.log.epoch_commit = row.fences == FenceRegime::kEpoch;
  mopts.log.group_commit_window_ns =
      row.fences == FenceRegime::kLegacy ? 0 : gc_window_ns;
  // A single applier shard so the queue concentrates and the batched slot
  // release (one fence per apply batch, LogManager::ReleaseSlots) gets
  // batches bigger than one; the backup drains sleep like the main pool's,
  // so the pipeline keeps up by batching rather than by parallelism.
  mopts.applier_threads = 1;
  mopts.backup_drain_latency_ns = drain_ns;
  mopts.backup_sleep_latency = true;
  auto mgr = std::move(kamino::txn::TxManager::Create(heap.get(), mopts).value());
  auto store = std::move(kamino::kv::KvStore::Create(mgr.get()).value());

  for (uint64_t k = 0; k < nkeys; ++k) {
    Status st = store->Upsert(k, kamino::workload::YcsbValue(k, value_size));
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  mgr->WaitIdle();
  // Load done: from here every drain of the main pool costs `drain_ns`,
  // overlappable (see file comment).
  heap->pool()->set_latency(0, drain_ns, /*sleep=*/true);

  const kamino::nvm::PoolStats pool_before = heap->pool()->stats();
  const std::vector<kamino::nvm::PoolSiteStats> sites_before = heap->pool()->site_stats();
  const kamino::txn::EngineStats engine_before = mgr->engine()->stats();

  kamino::stats::LatencyHistogram update_hist;
  kamino::stats::LatencyHistogram ack_hist;
  std::atomic<uint64_t> update_txns{0};
  std::atomic<uint64_t> key_count{nkeys};
  const bool epoch = row.fences == FenceRegime::kEpoch;

  const uint64_t start_ns = kamino::stats::NowNanos();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      kamino::workload::YcsbGenerator gen(kamino::workload::YcsbWorkload::kA, nkeys,
                                          &key_count, 0x1F83D9ABu + static_cast<uint64_t>(t));
      const std::string value =
          kamino::workload::YcsbValue(static_cast<uint64_t>(t), value_size);
      uint64_t updates = 0;
      // Epoch rows model the persist-behind client: updates return at
      // DRAM-commit (that is the latency recorded) and acknowledgements ride
      // behind, bounded to `ack_window` outstanding tickets per client —
      // once the window fills, the client stalls on the oldest ticket's
      // epoch drain before issuing the next op.
      std::deque<kamino::txn::CommitAck> pending;
      auto settle_oldest = [&] {
        const uint64_t w0 = kamino::stats::NowNanos();
        mgr->WaitCommitDurable(pending.front());
        ack_hist.Record(kamino::stats::NowNanos() - w0);
        pending.pop_front();
      };
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto req = gen.Next();
        Status st;
        if (req.op == kamino::workload::YcsbOp::kRead) {
          st = store->Read(req.key).status();
        } else if (epoch) {
          while (pending.size() >= ack_window) {
            settle_oldest();
          }
          kamino::txn::CommitAck ack;
          const uint64_t op_start = kamino::stats::NowNanos();
          st = store->UpdateAsync(req.key, value, &ack);
          update_hist.Record(kamino::stats::NowNanos() - op_start);
          if (st.ok() && ack.ticket != 0) {
            pending.push_back(ack);
          }
          ++updates;
        } else {
          const uint64_t op_start = kamino::stats::NowNanos();
          st = store->Update(req.key, value);
          update_hist.Record(kamino::stats::NowNanos() - op_start);
          ++updates;
        }
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          std::fprintf(stderr, "op failed: %s\n", st.ToString().c_str());
          std::abort();
        }
      }
      while (!pending.empty()) {
        settle_oldest();  // Every issued update is acknowledged durable.
      }
      update_txns.fetch_add(updates, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Per-txn accounting must include the applier's release fence, so wait for
  // the pipeline before sampling the counters.
  mgr->WaitIdle();
  const uint64_t elapsed_ns = kamino::stats::NowNanos() - start_ns;

  const kamino::nvm::PoolStats pool_after = heap->pool()->stats();
  const std::vector<kamino::nvm::PoolSiteStats> sites_after = heap->pool()->site_stats();
  const kamino::txn::EngineStats engine_after = mgr->engine()->stats();

  RunResult r;
  r.engine = row.label;
  r.fences = FenceName(row.fences);
  r.clients = clients;
  const double secs = static_cast<double>(elapsed_ns) / 1e9;
  r.ops_per_sec =
      secs > 0 ? static_cast<double>(ops_per_thread) * clients / secs : 0;
  r.update_txns = update_txns.load();
  r.update_p50_us = static_cast<double>(update_hist.PercentileNs(50)) / 1000.0;
  r.update_p99_us = static_cast<double>(update_hist.PercentileNs(99)) / 1000.0;
  if (epoch) {
    r.ack_stall_p50_us = static_cast<double>(ack_hist.PercentileNs(50)) / 1000.0;
    r.ack_stall_p99_us = static_cast<double>(ack_hist.PercentileNs(99)) / 1000.0;
  }
  const double txns = static_cast<double>(r.update_txns);
  if (txns > 0) {
    r.flushes_per_txn =
        static_cast<double>(pool_after.flush_calls - pool_before.flush_calls) / txns;
    r.drains_per_txn =
        static_cast<double>(pool_after.drain_calls - pool_before.drain_calls) / txns;
    std::map<std::string, uint64_t> before_by_site;
    for (const kamino::nvm::PoolSiteStats& s : sites_before) {
      before_by_site[s.site] = s.drain_calls;
    }
    for (const kamino::nvm::PoolSiteStats& s : sites_after) {
      const uint64_t delta = s.drain_calls - before_by_site[s.site];
      if (delta > 0) {
        r.site_drains_per_txn[s.site] = static_cast<double>(delta) / txns;
      }
    }
  }
  r.blocked_acquires = engine_after.log_blocked_acquires - engine_before.log_blocked_acquires;
  r.group_commit_commits =
      engine_after.group_commit_commits - engine_before.group_commit_commits;
  r.group_commit_leader_drains =
      engine_after.group_commit_leader_drains - engine_before.group_commit_leader_drains;
  return r;
}

// Micro-demonstration of the write-set batch API: opening N objects one by
// one drains N times; OpenWriteBatch flushes N records and drains once.
struct BatchMicro {
  uint64_t spans = 0;
  uint64_t loop_drains = 0;
  uint64_t batch_drains = 0;
};

BatchMicro RunBatchMicro() {
  constexpr uint64_t kSpans = 8;
  constexpr uint64_t kObjSize = 256;

  kamino::heap::HeapOptions hopts;
  hopts.pool_size = 64ull << 20;
  auto heap = std::move(kamino::heap::Heap::Create(hopts).value());
  kamino::txn::TxManagerOptions mopts;
  mopts.engine = kamino::txn::EngineType::kKaminoSimple;
  auto mgr = std::move(kamino::txn::TxManager::Create(heap.get(), mopts).value());

  uint64_t offs[2][kSpans];
  Status st = mgr->Run([&](kamino::txn::Tx& tx) -> Status {
    for (auto& group : offs) {
      for (uint64_t& off : group) {
        Result<uint64_t> o = tx.Alloc(kObjSize);
        if (!o.ok()) {
          return o.status();
        }
        off = *o;
      }
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "micro alloc failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  mgr->WaitIdle();

  BatchMicro m;
  m.spans = kSpans;
  auto drains = [&] { return heap->pool()->stats().drain_calls; };

  st = mgr->Run([&](kamino::txn::Tx& tx) -> Status {
    const uint64_t d0 = drains();
    for (uint64_t off : offs[0]) {
      Result<void*> p = tx.OpenWrite(off, kObjSize);
      if (!p.ok()) {
        return p.status();
      }
      std::memset(*p, 0xA5, kObjSize);
    }
    m.loop_drains = drains() - d0;
    return Status::Ok();
  });
  if (st.ok()) {
    st = mgr->Run([&](kamino::txn::Tx& tx) -> Status {
      kamino::txn::WriteSpan spans[kSpans];
      void* ptrs[kSpans];
      for (uint64_t i = 0; i < kSpans; ++i) {
        spans[i].offset = offs[1][i];
        spans[i].size = kObjSize;
      }
      const uint64_t d0 = drains();
      Status bst = tx.OpenWriteBatch(spans, kSpans, ptrs);
      if (!bst.ok()) {
        return bst;
      }
      m.batch_drains = drains() - d0;
      for (void* p : ptrs) {
        std::memset(p, 0x5A, kObjSize);
      }
      return Status::Ok();
    });
  }
  if (!st.ok()) {
    std::fprintf(stderr, "micro txn failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  mgr->WaitIdle();
  return m;
}

void PrintRow(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"engine\": \"%s\", \"fences\": \"%s\", \"clients\": %d, "
               "\"ops_per_sec\": %.1f, \"update_txns\": %llu, "
               "\"update_p50_us\": %.2f, \"update_p99_us\": %.2f, "
               "\"ack_stall_p50_us\": %.2f, \"ack_stall_p99_us\": %.2f, "
               "\"flushes_per_txn\": %.3f, \"drains_per_txn\": %.3f, "
               "\"blocked_acquires\": %llu, \"group_commit_commits\": %llu, "
               "\"group_commit_leader_drains\": %llu, \"site_drains_per_txn\": {",
               r.engine.c_str(), r.fences, r.clients, r.ops_per_sec,
               static_cast<unsigned long long>(r.update_txns), r.update_p50_us,
               r.update_p99_us, r.ack_stall_p50_us, r.ack_stall_p99_us,
               r.flushes_per_txn, r.drains_per_txn,
               static_cast<unsigned long long>(r.blocked_acquires),
               static_cast<unsigned long long>(r.group_commit_commits),
               static_cast<unsigned long long>(r.group_commit_leader_drains));
  size_t i = 0;
  for (const auto& [site, per_txn] : r.site_drains_per_txn) {
    std::fprintf(f, "%s\"%s\": %.3f", i++ > 0 ? ", " : "", site.c_str(), per_txn);
  }
  std::fprintf(f, "}}%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_KEYS", 4096);
  const uint64_t ops_per_thread = EnvOr("KAMINO_BENCH_OPS", 1200);
  const uint64_t value_size = EnvOr("KAMINO_BENCH_VALUE", 1024);
  const uint32_t drain_ns = static_cast<uint32_t>(EnvOr("KAMINO_BENCH_DRAIN_NS", 40'000));
  const uint64_t gc_window_ns = EnvOr("KAMINO_BENCH_GC_WINDOW_NS", 0);
  const uint64_t ack_window = EnvOr("KAMINO_BENCH_ACK_WINDOW", 8);
  const char* out_path = std::getenv("KAMINO_BENCH_JSON");
  if (out_path == nullptr) {
    out_path = "BENCH_commit_path.json";
  }
  if (nkeys == 0 || ops_per_thread == 0 || value_size == 0) {
    std::fprintf(stderr,
                 "invalid knobs: KAMINO_BENCH_KEYS/OPS/VALUE must be positive "
                 "integers (unparsable values read as 0)\n");
    return 2;
  }

  const EngineRow rows[] = {
      // The pre-change fence schedule, rebuilt in-binary: the baseline the
      // acceptance gate compares against.
      {"kamino-simple", kamino::txn::EngineType::kKaminoSimple, FenceRegime::kLegacy},
      {"kamino-simple", kamino::txn::EngineType::kKaminoSimple, FenceRegime::kNew},
      // Epoch/persist-behind commit (DESIGN.md §8): all commit-path fences
      // ride one shared epoch drain; gated at <= 1.5 drains/txn at 8 clients
      // and p50 within 1.5x of no-logging by the "epoch" checker.
      {"kamino-simple", kamino::txn::EngineType::kKaminoSimple, FenceRegime::kEpoch},
      {"kamino-dynamic", kamino::txn::EngineType::kKaminoDynamic, FenceRegime::kNew},
      {"kamino-dynamic", kamino::txn::EngineType::kKaminoDynamic, FenceRegime::kEpoch},
      {"undo-logging", kamino::txn::EngineType::kUndoLog, FenceRegime::kNew},
      {"copy-on-write", kamino::txn::EngineType::kCow, FenceRegime::kNew},
      {"redo-logging", kamino::txn::EngineType::kRedoLog, FenceRegime::kNew},
      {"no-logging", kamino::txn::EngineType::kNoLogging, FenceRegime::kNew},
  };
  const int sweep[] = {1, 2, 4, 8};

  std::vector<RunResult> results;
  for (const EngineRow& row : rows) {
    for (int clients : sweep) {
      std::fprintf(stderr, "%s/%s clients=%d ...\n", row.label, FenceName(row.fences),
                   clients);
      results.push_back(RunOnce(row, clients, nkeys, ops_per_thread, value_size, drain_ns,
                                gc_window_ns, ack_window));
      const RunResult& r = results.back();
      std::fprintf(stderr,
                   "  %.0f ops/s  p50 %.1fus p99 %.1fus  %.2f flushes/txn "
                   "%.2f drains/txn  (%llu gc commits, %llu leader drains)\n",
                   r.ops_per_sec, r.update_p50_us, r.update_p99_us, r.flushes_per_txn,
                   r.drains_per_txn, static_cast<unsigned long long>(r.group_commit_commits),
                   static_cast<unsigned long long>(r.group_commit_leader_drains));
    }
  }

  const BatchMicro micro = RunBatchMicro();
  std::fprintf(stderr, "batch micro: %llu spans, loop %llu drains vs batch %llu\n",
               static_cast<unsigned long long>(micro.spans),
               static_cast<unsigned long long>(micro.loop_drains),
               static_cast<unsigned long long>(micro.batch_drains));

  // Acceptance numbers: Kamino-Tx-Simple at 8 clients, legacy vs new vs
  // epoch, plus the no-logging reference the epoch gate is measured against.
  const RunResult* legacy8 = nullptr;
  const RunResult* new8 = nullptr;
  const RunResult* epoch8 = nullptr;
  const RunResult* nolog8 = nullptr;
  for (const RunResult& r : results) {
    if (r.clients != 8) {
      continue;
    }
    if (r.engine == "kamino-simple") {
      if (std::strcmp(r.fences, "legacy") == 0) {
        legacy8 = &r;
      } else if (std::strcmp(r.fences, "epoch") == 0) {
        epoch8 = &r;
      } else {
        new8 = &r;
      }
    } else if (r.engine == "no-logging") {
      nolog8 = &r;
    }
  }
  const double reduction =
      (legacy8 != nullptr && new8 != nullptr && legacy8->drains_per_txn > 0)
          ? 1.0 - new8->drains_per_txn / legacy8->drains_per_txn
          : 0;
  const double epoch_p50_vs_nolog =
      (epoch8 != nullptr && nolog8 != nullptr && nolog8->update_p50_us > 0)
          ? epoch8->update_p50_us / nolog8->update_p50_us
          : 0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"commit_path\",\n");
  std::fprintf(f, "  \"workload\": \"ycsb-a\",\n");
  std::fprintf(f, "  \"keys\": %llu,\n", static_cast<unsigned long long>(nkeys));
  std::fprintf(f, "  \"ops_per_client\": %llu,\n",
               static_cast<unsigned long long>(ops_per_thread));
  std::fprintf(f, "  \"value_size\": %llu,\n", static_cast<unsigned long long>(value_size));
  std::fprintf(f, "  \"drain_latency_ns\": %u,\n", drain_ns);
  std::fprintf(f, "  \"group_commit_window_ns\": %llu,\n",
               static_cast<unsigned long long>(gc_window_ns));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    PrintRow(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"batch_open_micro\": {\"spans\": %llu, \"loop_drains\": %llu, "
               "\"batch_drains\": %llu},\n",
               static_cast<unsigned long long>(micro.spans),
               static_cast<unsigned long long>(micro.loop_drains),
               static_cast<unsigned long long>(micro.batch_drains));
  std::fprintf(f, "  \"summary\": {\n");
  std::fprintf(f, "    \"kamino_drains_per_txn_legacy_8c\": %.3f,\n",
               legacy8 != nullptr ? legacy8->drains_per_txn : 0);
  std::fprintf(f, "    \"kamino_drains_per_txn_new_8c\": %.3f,\n",
               new8 != nullptr ? new8->drains_per_txn : 0);
  std::fprintf(f, "    \"drains_reduction\": %.3f,\n", reduction);
  std::fprintf(f, "    \"kamino_update_p50_legacy_8c_us\": %.2f,\n",
               legacy8 != nullptr ? legacy8->update_p50_us : 0);
  std::fprintf(f, "    \"kamino_update_p50_new_8c_us\": %.2f,\n",
               new8 != nullptr ? new8->update_p50_us : 0);
  std::fprintf(f, "    \"kamino_drains_per_txn_epoch_8c\": %.3f,\n",
               epoch8 != nullptr ? epoch8->drains_per_txn : 0);
  std::fprintf(f, "    \"kamino_update_p50_epoch_8c_us\": %.2f,\n",
               epoch8 != nullptr ? epoch8->update_p50_us : 0);
  std::fprintf(f, "    \"nolog_drains_per_txn_8c\": %.3f,\n",
               nolog8 != nullptr ? nolog8->drains_per_txn : 0);
  std::fprintf(f, "    \"nolog_update_p50_8c_us\": %.2f,\n",
               nolog8 != nullptr ? nolog8->update_p50_us : 0);
  std::fprintf(f, "    \"epoch_p50_vs_nolog\": %.3f\n", epoch_p50_vs_nolog);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %s (drains/txn 8c: legacy %.2f -> new %.2f -> epoch %.2f; "
               "epoch p50 %.1fus = %.2fx no-logging)\n",
               out_path, legacy8 != nullptr ? legacy8->drains_per_txn : 0,
               new8 != nullptr ? new8->drains_per_txn : 0,
               epoch8 != nullptr ? epoch8->drains_per_txn : 0,
               epoch8 != nullptr ? epoch8->update_p50_us : 0, epoch_p50_vs_nolog);
  return 0;
}
