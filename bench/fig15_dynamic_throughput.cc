// Figure 15 — "YCSB throughput with full and partial backups": the
// throughput companion of Figure 14 (4 client threads). The paper reports
// Full-Copy up to 1.5x ahead on write-intensive mixes, while Dynamic at
// α = 0.5 stays within ~5% on read-heavy ones.

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

constexpr int kThreads = 4;

void BM_Fig15(::benchmark::State& state, double alpha, workload::YcsbWorkload workload) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  const txn::EngineType engine =
      alpha >= 1.0 ? txn::EngineType::kKaminoSimple : txn::EngineType::kKaminoDynamic;
  auto bundle = KvBundle::Make(engine, nkeys, kValueSize, alpha);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res =
        RunYcsbOnBundle(bundle.get(), workload, kThreads, ops / kThreads, nkeys);
    SetYcsbCounters(state, res);
  }
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kD,
        workload::YcsbWorkload::kF}) {
    for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      std::string label =
          alpha >= 1.0 ? "FullCopy" : ("Dynamic-" + std::to_string(static_cast<int>(alpha * 100)));
      std::string name =
          std::string("Fig15/") + workload::YcsbWorkloadName(w) + "/" + label;
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [alpha, w](::benchmark::State& s) {
                                       BM_Fig15(s, alpha, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
