// Backup-epoch read path: scan-vs-OLTP interference and replica read
// scaling (DESIGN.md §12 acceptance benchmark).
//
// Part 1 — interference. One Kamino-Tx-Simple store takes a steady update
// load while a scanner repeatedly walks the whole keyspace three ways:
// not at all (baseline), through the main-path Scan (a 2PL transaction that
// read-locks every object it touches), and through the contention-free
// analytics path (SnapshotScanChunked against the backup at an epoch cut,
// zero main-heap lock acquisitions). The product is the update p50 under
// each mode: the backup path must inflate the writers' p50 by at most 1.3x
// of baseline AND by no more than the main-path scan does.
//
// Part 2 — read scaling. A replicated chain serves reads two ways: the
// linearizable client path (every read funnels through the head->tail
// network hop) and ReadStale (answered locally by ANY live replica,
// round-robined). Stale read throughput at 3 replicas must be >= 1.8x the
// head-path throughput — that is what serving reads from mid/tail replicas
// at their applied epoch buys.
//
// Not a google-benchmark binary: the two gated comparisons are the product
// and the JSON schema feeds tools/check_bench_regression.py. Emits
// BENCH_backup_reads.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/chain/chain.h"
#include "src/heap/heap.h"
#include "src/kv/kv_store.h"
#include "src/stats/histogram.h"
#include "src/txn/tx_manager.h"
#include "src/workload/ycsb.h"

namespace {

using kamino::Status;
using kamino::StatusCode;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

enum class ScanMode { kNone, kMain, kBackup };

struct InterferencePoint {
  double update_p50_us = 0;
  double update_p99_us = 0;
  double updates_per_sec = 0;
  double scans_per_sec = 0;
  uint64_t scan_errors = 0;
  // Backup-path evidence (zero in the other modes).
  uint64_t backup_read_hits = 0;
  uint64_t backup_read_misses = 0;
  uint64_t snapshot_views = 0;
  uint64_t cut_fence_waits = 0;
};

struct InterferenceBundle {
  std::unique_ptr<kamino::heap::Heap> heap;
  std::unique_ptr<kamino::txn::TxManager> mgr;
  std::unique_ptr<kamino::kv::KvStore> store;
};

InterferenceBundle BuildStore(uint64_t nkeys, uint64_t value_size, uint32_t flush_ns) {
  InterferenceBundle b;
  kamino::heap::HeapOptions hopts;
  hopts.pool_size = nkeys * value_size * 3 + (96ull << 20);
  // A realistic per-line write-back cost keeps the update critical path in
  // the tens of microseconds, so the p50 comparison measures scan-induced
  // blocking rather than scheduler noise.
  hopts.flush_latency_ns = flush_ns;
  b.heap = std::move(kamino::heap::Heap::Create(hopts).value());

  kamino::txn::TxManagerOptions mopts;
  mopts.engine = kamino::txn::EngineType::kKaminoSimple;
  mopts.applier_threads = 2;
  mopts.lock.timeout_ms = 30'000;
  b.mgr = std::move(kamino::txn::TxManager::Create(b.heap.get(), mopts).value());
  b.store = std::move(kamino::kv::KvStore::Create(b.mgr.get()).value());

  for (uint64_t k = 0; k < nkeys; ++k) {
    Status st = b.store->Upsert(k, kamino::workload::YcsbValue(k, value_size));
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  b.mgr->WaitIdle();
  return b;
}

// One fixed-duration phase: `writers` update threads, plus (mode != kNone)
// one scanner thread continuously walking the full keyspace.
InterferencePoint RunPhase(InterferenceBundle& b, ScanMode mode, uint64_t nkeys,
                           uint64_t value_size, uint64_t phase_ms, int writers,
                           uint64_t chunk, uint64_t write_gap_us) {
  const kamino::txn::EngineStats before = b.mgr->engine()->stats();
  kamino::stats::LatencyHistogram hist;
  std::mutex hist_mu;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> scan_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      kamino::stats::LatencyHistogram local;
      uint64_t x = 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(t);
      const std::string value =
          kamino::workload::YcsbValue(static_cast<uint64_t>(t), value_size);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t key = x % nkeys;
        const uint64_t t0 = kamino::stats::NowNanos();
        Status st = b.store->Update(key, value);
        if (st.ok()) {
          local.Record(kamino::stats::NowNanos() - t0);
          updates.fetch_add(1, std::memory_order_relaxed);
        }
        // Pace the open-loop load well below the pipeline's capacity:
        // otherwise the baseline p50 measures log-slot backpressure, and a
        // scanner that merely throttles throughput "improves" latency.
        if (write_gap_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(write_gap_us));
        }
      }
      std::lock_guard<std::mutex> lock(hist_mu);
      hist.Merge(local);
    });
  }
  if (mode != ScanMode::kNone) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        kamino::Result<std::vector<std::pair<uint64_t, std::string>>> rows =
            mode == ScanMode::kMain
                ? b.store->Scan(0, nkeys)
                : b.store->SnapshotScanChunked(0, nkeys, chunk);
        if (rows.ok() && rows->size() == nkeys) {
          scans.fetch_add(1, std::memory_order_relaxed);
        } else {
          scan_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const uint64_t start_ns = kamino::stats::NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) {
    th.join();
  }
  const double elapsed_s =
      static_cast<double>(kamino::stats::NowNanos() - start_ns) / 1e9;
  b.mgr->WaitIdle();

  const kamino::txn::EngineStats after = b.mgr->engine()->stats();
  InterferencePoint p;
  p.update_p50_us = static_cast<double>(hist.PercentileNs(50)) / 1000.0;
  p.update_p99_us = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  p.updates_per_sec = static_cast<double>(updates.load()) / elapsed_s;
  p.scans_per_sec = static_cast<double>(scans.load()) / elapsed_s;
  p.scan_errors = scan_errors.load();
  p.backup_read_hits = after.backup_read_hits - before.backup_read_hits;
  p.backup_read_misses = after.backup_read_misses - before.backup_read_misses;
  p.snapshot_views = after.backup_snapshot_views - before.backup_snapshot_views;
  p.cut_fence_waits = after.backup_cut_fence_waits - before.backup_cut_fence_waits;
  return p;
}

struct ChainPoint {
  int replicas = 0;
  double stale_reads_per_sec = 0;
  double head_reads_per_sec = 0;  // Linearizable path; 0 when not measured.
};

double RunChainReaders(kamino::chain::Chain* chain, uint64_t nkeys, int readers,
                       uint64_t phase_ms, bool stale) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      uint64_t key = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        key = (key + 1) % nkeys;
        kamino::Result<std::string> v =
            stale ? chain->ReadStale(key) : chain->Read(key);
        if (v.ok()) {
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const uint64_t start_ns = kamino::stats::NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) {
    th.join();
  }
  const double elapsed_s =
      static_cast<double>(kamino::stats::NowNanos() - start_ns) / 1e9;
  return static_cast<double>(reads.load()) / elapsed_s;
}

ChainPoint RunChain(int replicas, uint64_t nkeys, int readers, uint64_t phase_ms) {
  kamino::chain::ChainOptions opts;
  // Traditional geometry (f+1 replicas) hits the exact lengths 1 and 3;
  // StaleRead is chain-scheme-agnostic, so the scaling story is the same.
  opts.kamino = false;
  opts.f = replicas - 1;
  opts.pool_size = 32ull << 20;
  opts.log_region_size = 4ull << 20;
  opts.one_way_latency_us = 10;  // The paper's l_n on every protocol hop.
  auto chain = std::move(kamino::chain::Chain::Create(opts).value());
  if (static_cast<int>(chain->num_replicas()) != replicas) {
    std::fprintf(stderr, "geometry: wanted %d replicas, got %zu\n", replicas,
                 chain->num_replicas());
    std::abort();
  }
  for (uint64_t k = 0; k < nkeys; ++k) {
    Status st = chain->Upsert(k, kamino::workload::YcsbValue(k, 128));
    if (!st.ok()) {
      std::fprintf(stderr, "chain load failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  if (!chain->Quiesce().ok()) {
    std::abort();
  }
  ChainPoint p;
  p.replicas = replicas;
  p.stale_reads_per_sec =
      RunChainReaders(chain.get(), nkeys, readers, phase_ms, /*stale=*/true);
  p.head_reads_per_sec =
      RunChainReaders(chain.get(), nkeys, readers, phase_ms, /*stale=*/false);
  return p;
}

void PrintInterference(FILE* f, const char* name, const InterferencePoint& p,
                       double baseline_p50_us, bool last) {
  const double inflation =
      baseline_p50_us > 0 ? p.update_p50_us / baseline_p50_us : 0;
  std::fprintf(f,
               "    \"%s\": {\"update_p50_us\": %.1f, \"update_p99_us\": %.1f, "
               "\"updates_per_sec\": %.0f, \"scans_per_sec\": %.2f, "
               "\"scan_errors\": %llu, \"p50_inflation\": %.3f, "
               "\"backup_read_hits\": %llu, \"backup_read_misses\": %llu, "
               "\"snapshot_views\": %llu, \"cut_fence_waits\": %llu}%s\n",
               name, p.update_p50_us, p.update_p99_us, p.updates_per_sec,
               p.scans_per_sec, static_cast<unsigned long long>(p.scan_errors),
               inflation, static_cast<unsigned long long>(p.backup_read_hits),
               static_cast<unsigned long long>(p.backup_read_misses),
               static_cast<unsigned long long>(p.snapshot_views),
               static_cast<unsigned long long>(p.cut_fence_waits),
               last ? "" : ",");
}

}  // namespace

int main() {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_KEYS", 4096);
  const uint64_t value_size = EnvOr("KAMINO_BENCH_VALUE", 256);
  const uint64_t phase_ms = EnvOr("KAMINO_BENCH_PHASE_MS", 800);
  const int writers = static_cast<int>(EnvOr("KAMINO_BENCH_WRITERS", 2));
  const uint64_t chunk = EnvOr("KAMINO_BENCH_CHUNK", 128);
  const uint64_t write_gap_us = EnvOr("KAMINO_BENCH_WRITE_GAP_US", 150);
  const uint32_t flush_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_FLUSH_NS", 1'000));
  const uint64_t chain_keys = EnvOr("KAMINO_BENCH_CHAIN_KEYS", 512);
  const int readers = static_cast<int>(EnvOr("KAMINO_BENCH_READERS", 4));
  const char* out_path = std::getenv("KAMINO_BENCH_JSON");
  if (out_path == nullptr) {
    out_path = "BENCH_backup_reads.json";
  }

  InterferenceBundle b = BuildStore(nkeys, value_size, flush_ns);
  std::fprintf(stderr, "interference: baseline ...\n");
  const InterferencePoint baseline =
      RunPhase(b, ScanMode::kNone, nkeys, value_size, phase_ms, writers, chunk, write_gap_us);
  std::fprintf(stderr, "  update p50 %.1fus  (%.0f updates/s)\n",
               baseline.update_p50_us, baseline.updates_per_sec);
  std::fprintf(stderr, "interference: main-path scan ...\n");
  const InterferencePoint main_scan =
      RunPhase(b, ScanMode::kMain, nkeys, value_size, phase_ms, writers, chunk, write_gap_us);
  std::fprintf(stderr, "  update p50 %.1fus (%.2fx)  %.2f scans/s\n",
               main_scan.update_p50_us,
               main_scan.update_p50_us / baseline.update_p50_us,
               main_scan.scans_per_sec);
  std::fprintf(stderr, "interference: backup-path scan ...\n");
  const InterferencePoint backup_scan =
      RunPhase(b, ScanMode::kBackup, nkeys, value_size, phase_ms, writers, chunk, write_gap_us);
  std::fprintf(stderr, "  update p50 %.1fus (%.2fx)  %.2f scans/s\n",
               backup_scan.update_p50_us,
               backup_scan.update_p50_us / baseline.update_p50_us,
               backup_scan.scans_per_sec);
  b.store.reset();
  b.mgr.reset();
  b.heap.reset();

  std::fprintf(stderr, "chain: 1 replica ...\n");
  const ChainPoint chain1 = RunChain(1, chain_keys, readers, phase_ms);
  std::fprintf(stderr, "  stale %.0f reads/s, head %.0f reads/s\n",
               chain1.stale_reads_per_sec, chain1.head_reads_per_sec);
  std::fprintf(stderr, "chain: 3 replicas ...\n");
  const ChainPoint chain3 = RunChain(3, chain_keys, readers, phase_ms);
  std::fprintf(stderr, "  stale %.0f reads/s, head %.0f reads/s (%.2fx)\n",
               chain3.stale_reads_per_sec, chain3.head_reads_per_sec,
               chain3.stale_reads_per_sec / chain3.head_reads_per_sec);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"backup_reads\",\n");
  std::fprintf(f, "  \"engine\": \"kamino-simple\",\n");
  std::fprintf(f,
               "  \"keys\": %llu,\n  \"value_size\": %llu,\n"
               "  \"phase_ms\": %llu,\n  \"writers\": %d,\n"
               "  \"chunk\": %llu,\n  \"flush_ns\": %u,\n  \"write_gap_us\": %llu,\n",
               static_cast<unsigned long long>(nkeys),
               static_cast<unsigned long long>(value_size),
               static_cast<unsigned long long>(phase_ms), writers,
               static_cast<unsigned long long>(chunk), flush_ns,
               static_cast<unsigned long long>(write_gap_us));
  std::fprintf(f, "  \"interference\": {\n");
  PrintInterference(f, "baseline", baseline, baseline.update_p50_us, false);
  PrintInterference(f, "main_scan", main_scan, baseline.update_p50_us, false);
  PrintInterference(f, "backup_scan", backup_scan, baseline.update_p50_us, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"chain\": {\n");
  std::fprintf(f, "    \"chain_keys\": %llu,\n    \"readers\": %d,\n",
               static_cast<unsigned long long>(chain_keys), readers);
  std::fprintf(f,
               "    \"replicas_1\": {\"stale_reads_per_sec\": %.0f, "
               "\"head_reads_per_sec\": %.0f},\n",
               chain1.stale_reads_per_sec, chain1.head_reads_per_sec);
  std::fprintf(f,
               "    \"replicas_3\": {\"stale_reads_per_sec\": %.0f, "
               "\"head_reads_per_sec\": %.0f, \"stale_vs_head\": %.3f}\n",
               chain3.stale_reads_per_sec, chain3.head_reads_per_sec,
               chain3.head_reads_per_sec > 0
                   ? chain3.stale_reads_per_sec / chain3.head_reads_per_sec
                   : 0);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path);
  return 0;
}
