// Ablation (paper §7: "For other slower NVMs, the benefits of Kamino-Tx
// would only be larger since the copying would take longer"): sweep the
// emulated per-line flush latency from DRAM-like (0 ns) to PCM-like
// (1000 ns) and watch the Kamino-Tx / undo-logging throughput gap widen on
// a write-heavy mix — undo-logging flushes the copied snapshots in the
// critical path, Kamino-Tx only its cache-line intent records.

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

void BM_NvmLatency(::benchmark::State& state, txn::EngineType engine,
                   uint32_t flush_latency_ns) {
  const uint64_t nkeys = DefaultKeys() / 2;
  const uint64_t ops = DefaultOps() / 2;
  auto bundle = KvBundle::Make(engine, nkeys, kValueSize, 0.2, flush_latency_ns);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res =
        RunYcsbOnBundle(bundle.get(), workload::YcsbWorkload::kA, /*threads=*/1, ops, nkeys);
    SetYcsbCounters(state, res);
  }
}

void RegisterAll() {
  for (uint32_t latency : {0u, 200u, 500u, 1000u}) {
    for (txn::EngineType engine :
         {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
      std::string name = std::string("NvmLatency/flush_ns:") + std::to_string(latency) +
                         "/" + EngineLabel(engine);
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [engine, latency](::benchmark::State& s) {
                                       BM_NvmLatency(s, engine, latency);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
