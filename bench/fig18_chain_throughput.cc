// Figure 18 — "YCSB throughput for Kamino-Tx-Chain and traditional chain
// replication configured to survive two failures": the throughput companion
// of Figure 17, with pipelined client threads. The paper reports up to 2.2x
// better throughput for Kamino-Tx-Chain on write-intensive mixes at the
// price of 33% extra storage.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/chain_bench_util.h"
#include "src/chain/chain.h"

namespace kamino::bench {
namespace {

void BM_Fig18(::benchmark::State& state, bool kamino, workload::YcsbWorkload w) {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_CHAIN_KEYS", 2'000);
  const uint64_t ops = EnvOr("KAMINO_BENCH_CHAIN_OPS", 4'000);
  constexpr int kThreads = 4;  // Pipelined clients.
  chain::ChainOptions copts;
  copts.kamino = kamino;
  copts.f = 2;
  copts.pool_size = 96ull << 20;
  copts.one_way_latency_us = 10;
  copts.flush_latency_ns = DefaultFlushNs();
  copts.fault_seed = EnvOr("KAMINO_BENCH_CHAIN_FAULT_SEED", copts.fault_seed);
  auto ch = std::move(chain::Chain::Create(copts).value());
  for (uint64_t k = 0; k < nkeys; ++k) {
    if (!ch->Upsert(k, workload::YcsbValue(k, kValueSize)).ok()) {
      state.SkipWithError("chain load failed");
      return;
    }
  }
  ApplyChainFaultsFromEnv(ch.get());  // Lossy mode (chain_bench_util.h).
  for (auto _ : state) {
    std::atomic<uint64_t> key_count{nkeys};
    std::atomic<uint64_t> errors{0};
    const uint64_t start = stats::NowNanos();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        workload::YcsbGenerator gen(w, nkeys, &key_count, 47 + static_cast<uint64_t>(t));
        std::string value = workload::YcsbValue(static_cast<uint64_t>(t), kValueSize);
        for (uint64_t i = 0; i < ops / kThreads; ++i) {
          const auto req = gen.Next();
          Status st;
          if (req.op == workload::YcsbOp::kRead) {
            st = ch->Read(req.key).status();
          } else {
            st = ch->Upsert(req.key, value);
          }
          if (!st.ok() && st.code() != StatusCode::kNotFound) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& wk : workers) {
      wk.join();
    }
    const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
    state.counters["Kops_per_sec"] = static_cast<double>(ops) / secs / 1000.0;
    state.counters["errors"] = static_cast<double>(errors.load());
    state.counters["nvm_bytes"] = static_cast<double>(ch->total_nvm_bytes());
  }
  ReportChainNetworkCounters(state, ch.get());
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kD,
        workload::YcsbWorkload::kF}) {
    for (bool kamino : {true, false}) {
      std::string name = std::string("Fig18/") + workload::YcsbWorkloadName(w) + "/" +
                         (kamino ? "KaminoTxChain" : "ChainReplication");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [kamino, w](::benchmark::State& s) {
                                       BM_Fig18(s, kamino, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
