// §7.1 "Worst-case performance" — "the worst-case scenario for Kamino-Tx is
// continuously executing a transaction that updates the same object":
// 1-8 threads, each transactionally updating its own object (64 B - 4 KiB)
// back to back, so every transaction is dependent on the previous one's
// backup sync. The paper finds Kamino-Tx still ahead for objects < 1 KB
// (no log allocation) and parity at larger sizes (memcpy-bound).

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

void BM_WorstCase(::benchmark::State& state, txn::EngineType engine, int threads,
                  uint64_t object_size) {
  const uint64_t updates =
      EnvOr("KAMINO_BENCH_WORSTCASE_UPDATES", 10'000) / static_cast<uint64_t>(threads);

  heap::HeapOptions hopts;
  hopts.pool_size = 128ull << 20;
  hopts.flush_latency_ns = DefaultFlushNs();
  auto heap = std::move(heap::Heap::Create(hopts).value());
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  mopts.backup_flush_latency_ns = DefaultFlushNs();
  auto mgr = std::move(txn::TxManager::Create(heap.get(), mopts).value());

  // Each thread owns one object.
  std::vector<uint64_t> objects(static_cast<size_t>(threads));
  for (auto& off : objects) {
    Status st = mgr->Run([&](txn::Tx& tx) -> Status {
      Result<uint64_t> o = tx.Alloc(object_size);
      if (!o.ok()) {
        return o.status();
      }
      off = *o;
      return Status::Ok();
    });
    if (!st.ok()) {
      state.SkipWithError("alloc failed");
      return;
    }
  }
  mgr->WaitIdle();

  for (auto _ : state) {
    stats::LatencyHistogram hist;
    const uint64_t start = stats::NowNanos();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const uint64_t off = objects[static_cast<size_t>(t)];
        for (uint64_t i = 0; i < updates; ++i) {
          const uint64_t op_start = stats::NowNanos();
          (void)mgr->Run([&](txn::Tx& tx) -> Status {
            Result<void*> p = tx.OpenWrite(off, object_size);
            if (!p.ok()) {
              return p.status();
            }
            std::memset(*p, static_cast<int>(i & 0xFF), object_size);
            return Status::Ok();
          });
          hist.Record(stats::NowNanos() - op_start);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
    state.counters["Kops_per_sec"] =
        static_cast<double>(updates) * threads / secs / 1000.0;
    state.counters["mean_us"] = hist.MeanNs() / 1000.0;
    state.counters["p99_us"] = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  }
}

void RegisterAll() {
  for (uint64_t size : {64ull, 256ull, 1024ull, 4096ull}) {
    for (int threads : {1, 4, 8}) {
      for (txn::EngineType engine :
           {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
        std::string name = "WorstCase/obj:" + std::to_string(size) + "B/" +
                           EngineLabel(engine) + "/threads:" + std::to_string(threads);
        ::benchmark::RegisterBenchmark(name.c_str(),
                                       [engine, threads, size](::benchmark::State& s) {
                                         BM_WorstCase(s, engine, threads, size);
                                       })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
