// Ablation for the paper's §1 observation: "These overheads are especially
// magnified if the granularity at which data is logged is larger than the
// actual byte-ranges that the transaction modifies ... in Intel's NVML, an
// entire C structure is typically logged even though only a few fields are
// typically modified."
//
// A transaction updates one 64-byte field inside a 4 KiB object, declaring
// write intent either on the exact field or on the whole structure. Undo
// logging must snapshot + flush whatever is declared, so its cost scales
// with the declared range; Kamino-Tx records only the address either way,
// so its critical path is nearly granularity-independent — exactly the
// asymmetry the paper calls out.

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

void BM_Granularity(::benchmark::State& state, txn::EngineType engine, bool whole_object) {
  constexpr uint64_t kObjectSize = 4096;
  constexpr uint64_t kFieldSize = 64;
  const uint64_t updates = EnvOr("KAMINO_BENCH_GRANULARITY_UPDATES", 5'000);

  heap::HeapOptions hopts;
  hopts.pool_size = 128ull << 20;
  hopts.flush_latency_ns = DefaultFlushNs();
  auto heap = std::move(heap::Heap::Create(hopts).value());
  txn::TxManagerOptions mopts;
  mopts.engine = engine;
  mopts.backup_flush_latency_ns = DefaultFlushNs();
  auto mgr = std::move(txn::TxManager::Create(heap.get(), mopts).value());

  // A pool of objects so successive updates are not dependent transactions.
  constexpr uint64_t kObjects = 512;
  std::vector<uint64_t> objects(kObjects);
  for (auto& off : objects) {
    Status st = mgr->Run([&](txn::Tx& tx) -> Status {
      Result<uint64_t> o = tx.Alloc(kObjectSize);
      if (!o.ok()) {
        return o.status();
      }
      off = *o;
      return Status::Ok();
    });
    if (!st.ok()) {
      state.SkipWithError("alloc failed");
      return;
    }
  }
  mgr->WaitIdle();
  heap->pool()->ResetStats();

  for (auto _ : state) {
    stats::LatencyHistogram hist;
    Xoshiro256 rng(13);
    const uint64_t start = stats::NowNanos();
    for (uint64_t i = 0; i < updates; ++i) {
      const uint64_t obj = objects[rng.NextBounded(kObjects)];
      // The modified field sits at a random 64B-aligned offset in the object.
      const uint64_t field = obj + rng.NextBounded(kObjectSize / kFieldSize) * kFieldSize;
      const uint64_t op_start = stats::NowNanos();
      (void)mgr->Run([&](txn::Tx& tx) -> Status {
        // Declare intent at the chosen granularity; write only the field.
        const uint64_t open_off = whole_object ? obj : field;
        const uint64_t open_size = whole_object ? kObjectSize : kFieldSize;
        Result<void*> p = tx.OpenWrite(open_off, open_size);
        if (!p.ok()) {
          return p.status();
        }
        auto* base = static_cast<uint8_t*>(*p);
        std::memset(base + (whole_object ? field - obj : 0), static_cast<int>(i), kFieldSize);
        return Status::Ok();
      });
      hist.Record(stats::NowNanos() - op_start);
    }
    const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
    mgr->WaitIdle();
    const nvm::PoolStats ps = heap->pool()->stats();
    state.counters["Kops_per_sec"] = static_cast<double>(updates) / secs / 1000.0;
    state.counters["mean_us"] = hist.MeanNs() / 1000.0;
    state.counters["cp_lines_per_op"] =
        static_cast<double>(ps.lines_flushed) / static_cast<double>(updates);
  }
}

void RegisterAll() {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog, txn::EngineType::kCow}) {
    for (bool whole : {false, true}) {
      std::string name = std::string("LogGranularity/") + EngineLabel(engine) + "/" +
                         (whole ? "WholeStruct4K" : "ExactField64B");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [engine, whole](::benchmark::State& s) {
                                       BM_Granularity(s, engine, whole);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
