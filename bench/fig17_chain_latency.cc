// Figure 17 — "YCSB latency for Kamino-Tx-Chain and traditional chain
// replication each tolerating two failures": average operation latency over
// the replicated store. The paper reports up to 2.2x lower latency for
// Kamino-Tx-Chain on write-intensive mixes (no data copies in the critical
// path at any replica).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/chain_bench_util.h"
#include "src/chain/chain.h"

namespace kamino::bench {
namespace {

struct ChainYcsbResult {
  double mean_us = 0;
  double p99_us = 0;
  double ops_per_sec = 0;
  uint64_t errors = 0;
};

ChainYcsbResult RunChainYcsb(chain::Chain* ch, workload::YcsbWorkload w, int threads,
                             uint64_t ops_per_thread, uint64_t nkeys) {
  std::atomic<uint64_t> key_count{nkeys};
  stats::LatencyHistogram hist;
  std::atomic<uint64_t> errors{0};
  const uint64_t start = stats::NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      workload::YcsbGenerator gen(w, nkeys, &key_count, 31 + static_cast<uint64_t>(t));
      std::string value = workload::YcsbValue(static_cast<uint64_t>(t), kValueSize);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto req = gen.Next();
        const uint64_t op_start = stats::NowNanos();
        Status st;
        switch (req.op) {
          case workload::YcsbOp::kRead: {
            Result<std::string> r = ch->Read(req.key);
            st = r.status();
            break;
          }
          case workload::YcsbOp::kUpdate:
          case workload::YcsbOp::kInsert:
            st = ch->Upsert(req.key, value);
            break;
          case workload::YcsbOp::kReadModifyWrite: {
            Result<std::string> r = ch->Read(req.key);
            if (r.ok()) {
              std::string v = std::move(*r);
              if (!v.empty()) {
                ++v[0];
              }
              st = ch->Upsert(req.key, std::move(v));
            } else {
              st = r.status();
            }
            break;
          }
        }
        hist.Record(stats::NowNanos() - op_start);
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& wk : workers) {
    wk.join();
  }
  ChainYcsbResult res;
  const double secs = static_cast<double>(stats::NowNanos() - start) / 1e9;
  res.mean_us = hist.MeanNs() / 1000.0;
  res.p99_us = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  res.ops_per_sec = static_cast<double>(ops_per_thread) * threads / secs;
  res.errors = errors.load();
  return res;
}

void BM_Fig17(::benchmark::State& state, bool kamino, workload::YcsbWorkload w) {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_CHAIN_KEYS", 2'000);
  const uint64_t ops = EnvOr("KAMINO_BENCH_CHAIN_OPS", 3'000);
  chain::ChainOptions copts;
  copts.kamino = kamino;
  copts.f = 2;  // The figure's configuration: tolerate two failures.
  copts.pool_size = 96ull << 20;
  copts.one_way_latency_us = 10;
  copts.flush_latency_ns = DefaultFlushNs();
  copts.fault_seed = EnvOr("KAMINO_BENCH_CHAIN_FAULT_SEED", copts.fault_seed);
  auto ch = std::move(chain::Chain::Create(copts).value());
  for (uint64_t k = 0; k < nkeys; ++k) {
    if (!ch->Upsert(k, workload::YcsbValue(k, kValueSize)).ok()) {
      state.SkipWithError("chain load failed");
      return;
    }
  }
  ApplyChainFaultsFromEnv(ch.get());  // Lossy mode (chain_bench_util.h).
  for (auto _ : state) {
    const ChainYcsbResult res = RunChainYcsb(ch.get(), w, /*threads=*/1, ops, nkeys);
    state.counters["mean_us"] = res.mean_us;
    state.counters["p99_us"] = res.p99_us;
    state.counters["errors"] = static_cast<double>(res.errors);
  }
  ReportChainNetworkCounters(state, ch.get());
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kD,
        workload::YcsbWorkload::kF}) {
    for (bool kamino : {true, false}) {
      std::string name = std::string("Fig17/") + workload::YcsbWorkloadName(w) + "/" +
                         (kamino ? "KaminoTxChain" : "ChainReplication");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [kamino, w](::benchmark::State& s) {
                                       BM_Fig17(s, kamino, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
