// Figure 16 — "Normalized performance per dollar for different backup
// configurations and undo-logging": undo-logging, Dynamic-10..90 and
// Full-Copy, for a write-heavy workload (YCSB A) and a read-only one
// (YCSB C). Throughput is measured on this stack; dollars come from the
// stats::CostModel (the paper used the AWS TCO calculator — see DESIGN.md's
// substitution table). All values are normalized to undo-logging's
// write-heavy ops/sec/$ = 1, like the figure's y-axis.

#include "bench/bench_util.h"
#include "src/stats/cost_model.h"

namespace kamino::bench {
namespace {

struct Config {
  const char* label;
  txn::EngineType engine;
  double alpha;  // Backup fraction for the cost model.
};

const Config kConfigs[] = {
    {"UndoLogging", txn::EngineType::kUndoLog, 0.0},
    {"Dynamic-10", txn::EngineType::kKaminoDynamic, 0.1},
    {"Dynamic-30", txn::EngineType::kKaminoDynamic, 0.3},
    {"Dynamic-50", txn::EngineType::kKaminoDynamic, 0.5},
    {"Dynamic-70", txn::EngineType::kKaminoDynamic, 0.7},
    {"Dynamic-90", txn::EngineType::kKaminoDynamic, 0.9},
    {"FullCopy", txn::EngineType::kKaminoSimple, 1.0},
};

double MeasureOpsPerSec(const Config& cfg, workload::YcsbWorkload workload) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  auto bundle = KvBundle::Make(cfg.engine, nkeys, kValueSize, cfg.alpha);
  bundle->Load(nkeys);
  constexpr int kThreads = 4;
  return RunYcsb(bundle->store.get(), workload, kThreads, ops / kThreads, nkeys).ops_per_sec;
}

void BM_Fig16(::benchmark::State& state, const Config& cfg, workload::YcsbWorkload workload,
              bool write_heavy) {
  // NVM bytes: 1x data for the heap plus alpha x data for the backup; the
  // data size is the paper's per-node working set, scaled.
  const double data_gb = 100.0;  // Modelled deployment size (paper-scale).
  const auto nvm_bytes =
      static_cast<uint64_t>((1.0 + cfg.alpha) * data_gb * static_cast<double>(1ull << 30));
  static double undo_baseline_a = 0;  // Normalization anchor.

  for (auto _ : state) {
    const double ops = MeasureOpsPerSec(cfg, workload);
    stats::CostModel model;
    const double per_dollar = model.OpsPerSecPerDollar(ops, 1, nvm_bytes);
    if (write_heavy && cfg.engine == txn::EngineType::kUndoLog) {
      undo_baseline_a = per_dollar;
    }
    state.counters["ops_per_sec"] = ops;
    state.counters["dollars"] = model.Dollars(1, nvm_bytes);
    state.counters["ops_per_sec_per_dollar"] = per_dollar;
    if (undo_baseline_a > 0) {
      state.counters["norm_vs_undo_write_heavy"] = per_dollar / undo_baseline_a;
    }
  }
}

void RegisterAll() {
  // Registration order matters: undo-logging/write-heavy runs first and
  // anchors the normalization, matching the figure.
  for (bool write_heavy : {true, false}) {
    const workload::YcsbWorkload w =
        write_heavy ? workload::YcsbWorkload::kA : workload::YcsbWorkload::kC;
    for (const Config& cfg : kConfigs) {
      std::string name = std::string("Fig16/") +
                         (write_heavy ? "WriteHeavy" : "ReadOnly") + "/" + cfg.label;
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [&cfg, w, write_heavy](::benchmark::State& s) {
                                       BM_Fig16(s, cfg, w, write_heavy);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
