// Keyspace-sharding sweep (ISSUE 7 acceptance benchmark).
//
// Measures end-to-end YCSB-A (zipfian) throughput against a ShardedStore as
// the shard count grows (1/2/4/8) at a fixed client count, with the
// cross-shard MultiUpdate fraction swept (0% / 5% / 20%).
//
// The pools inject per-line flush and per-fence drain latency that *sleeps*
// instead of spinning, so independent shards overlap their persistence
// stalls even on a small host. The serialized resource sharding multiplies
// is the per-shard applier: each shard has exactly one applier thread whose
// backup write-back (the Kamino mirror sync) is one serial persistence
// stream — one shard is one stream, N shards are N. Throughput is measured
// commit-to-applied (clients done AND every backup in sync), the same
// sustained metric the applier_scaling bench gates on: a store cannot
// sustain commits faster than its backup drains, and write locks are held
// until the backup syncs, so apply lag feeds straight back into the
// zipfian-hot keys. That feedback is also why scaling is sub-linear: the
// shard owning the scrambled-zipfian hot key absorbs ~10% of all updates on
// top of its 1/N share, so its applier saturates first (the output's
// per-shard imbalance column makes this visible).
//
// Per-shard EngineStats expose queue depth and commit imbalance so the
// router's key spreading is visible in the output.
//
// Not a google-benchmark binary: the sweep is the product, and the JSON
// schema (BENCH_sharding.json) is what tools/check_bench_regression.py
// gates on.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/shard/sharded_store.h"
#include "src/stats/histogram.h"
#include "src/workload/ycsb.h"

namespace {

using kamino::Status;
using kamino::StatusCode;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

struct SweepPoint {
  int shards = 0;
  int cross_pct = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
  double ops_per_sec = 0;
  uint64_t cross_shard_commits = 0;
  uint64_t committed_min = 0;
  uint64_t committed_max = 0;
  double imbalance = 0;  // max committed / mean committed across shards.
  uint64_t max_queue_depth = 0;  // Summed across shards at the worst sample.
};

SweepPoint RunOnce(int shards, int cross_pct, uint64_t nkeys, uint64_t ops_per_thread,
                   int client_threads, uint64_t value_size, uint32_t flush_ns,
                   uint32_t drain_ns, uint32_t backup_flush_ns, uint32_t backup_drain_ns) {
  kamino::shard::ShardedStoreOptions sopts;
  sopts.num_shards = shards;
  sopts.pool_size =
      nkeys * value_size * 3 / static_cast<uint64_t>(shards) + (48ull << 20);
  sopts.log_region_size = 8ull << 20;
  sopts.lock.timeout_ms = 30'000;
  sopts.applier_threads = 1;
  sopts.sleep_latency = true;  // Overlappable stalls (see header note).
  sopts.flush_latency_ns = flush_ns;
  sopts.drain_latency_ns = drain_ns;
  auto store = std::move(kamino::shard::ShardedStore::Create(sopts).value());

  // Parallel load: the injected latency applies here too, so spread it.
  {
    std::vector<std::thread> loaders;
    const uint64_t per = (nkeys + static_cast<uint64_t>(client_threads) - 1) /
                         static_cast<uint64_t>(client_threads);
    for (int t = 0; t < client_threads; ++t) {
      loaders.emplace_back([&, t] {
        const uint64_t lo = static_cast<uint64_t>(t) * per;
        const uint64_t hi = std::min(nkeys, lo + per);
        for (uint64_t k = lo; k < hi; ++k) {
          Status st = store->Upsert(k, kamino::workload::YcsbValue(k, value_size));
          if (!st.ok()) {
            std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
            std::abort();
          }
        }
      });
    }
    for (auto& l : loaders) {
      l.join();
    }
  }
  store->WaitIdle();

  // Aim the backup write-back cost only now: the load phase above runs with a
  // free mirror so the sweep's measured window starts from a synced store.
  for (int s = 0; s < shards; ++s) {
    store->shard_manager(s)->backup_pool()->set_latency(backup_flush_ns, backup_drain_ns,
                                                        /*sleep=*/true);
  }

  std::vector<uint64_t> committed_before(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    committed_before[static_cast<size_t>(s)] = store->ShardStats(s).committed;
  }

  std::atomic<bool> running{true};
  std::atomic<uint64_t> max_depth{0};
  std::thread sampler([&] {
    while (running.load(std::memory_order_relaxed)) {
      uint64_t d = 0;
      for (int s = 0; s < shards; ++s) {
        d += store->ShardStats(s).applier_queue_depth;
      }
      uint64_t cur = max_depth.load(std::memory_order_relaxed);
      while (d > cur && !max_depth.compare_exchange_weak(cur, d)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const uint64_t start_ns = kamino::stats::NowNanos();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  std::atomic<uint64_t> key_count{nkeys};
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      kamino::workload::YcsbGenerator gen(kamino::workload::YcsbWorkload::kA, nkeys,
                                          &key_count, 0x452821E6u + static_cast<uint64_t>(t));
      const std::string value =
          kamino::workload::YcsbValue(static_cast<uint64_t>(t), value_size);
      uint64_t rng = 0x9E3779B9u * (static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto req = gen.Next();
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        Status st;
        if (cross_pct > 0 && static_cast<int>((rng >> 33) % 100) < cross_pct) {
          // Multi-key atomic update over two distinct keys — usually landing
          // on two different shards, exercising the 2PC commit.
          uint64_t other = (req.key * 2654435761ull + 1) % nkeys;
          if (other == req.key) {
            other = (other + 1) % nkeys;
          }
          st = store->MultiUpdate({{req.key, value}, {other, value}});
        } else if (req.op == kamino::workload::YcsbOp::kRead) {
          st = store->Read(req.key).status();
        } else {
          st = store->Update(req.key, value);
        }
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          std::fprintf(stderr, "op failed: %s\n", st.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  store->WaitIdle();
  // Commit-to-applied: the clock stops when every backup is in sync, so the
  // number reflects the sustained rate the applier streams can absorb, not a
  // burst the queues would still be digesting.
  const uint64_t elapsed_ns = kamino::stats::NowNanos() - start_ns;
  running.store(false, std::memory_order_relaxed);
  sampler.join();

  SweepPoint p;
  p.shards = shards;
  p.cross_pct = cross_pct;
  p.ops = ops_per_thread * static_cast<uint64_t>(client_threads);
  p.elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  p.ops_per_sec = p.elapsed_s > 0 ? static_cast<double>(p.ops) / p.elapsed_s : 0;
  p.cross_shard_commits = store->cross_shard_stats().cross_shard_commits;
  p.committed_min = ~0ull;
  uint64_t total = 0;
  for (int s = 0; s < shards; ++s) {
    const uint64_t c =
        store->ShardStats(s).committed - committed_before[static_cast<size_t>(s)];
    p.committed_min = std::min(p.committed_min, c);
    p.committed_max = std::max(p.committed_max, c);
    total += c;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(shards);
  p.imbalance = mean > 0 ? static_cast<double>(p.committed_max) / mean : 0;
  p.max_queue_depth = max_depth.load();
  return p;
}

}  // namespace

int main() {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_KEYS", 8192);
  const uint64_t ops_per_thread = EnvOr("KAMINO_BENCH_OPS", 2000);
  const int client_threads = static_cast<int>(EnvOr("KAMINO_BENCH_CLIENTS", 8));
  const uint64_t value_size = EnvOr("KAMINO_BENCH_VALUE", 1024);
  const uint32_t flush_ns = static_cast<uint32_t>(EnvOr("KAMINO_BENCH_FLUSH_NS", 2'000));
  const uint32_t drain_ns = static_cast<uint32_t>(EnvOr("KAMINO_BENCH_DRAIN_NS", 20'000));
  const uint32_t backup_flush_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_BACKUP_FLUSH_NS", 35'000));
  const uint32_t backup_drain_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_BACKUP_DRAIN_NS", 20'000));
  const char* out_path = std::getenv("KAMINO_BENCH_JSON");
  if (out_path == nullptr) {
    out_path = "BENCH_sharding.json";
  }
  if (nkeys == 0 || ops_per_thread == 0 || client_threads <= 0 || value_size == 0) {
    std::fprintf(stderr,
                 "invalid knobs: KAMINO_BENCH_KEYS/OPS/CLIENTS/VALUE must be "
                 "positive integers (unparsable values read as 0)\n");
    return 2;
  }

  const int shard_sweep[] = {1, 2, 4, 8};
  const int cross_sweep[] = {0, 5, 20};
  std::vector<SweepPoint> points;
  for (int shards : shard_sweep) {
    for (int cross : cross_sweep) {
      std::fprintf(stderr, "shards=%d cross=%d%% ...\n", shards, cross);
      points.push_back(RunOnce(shards, cross, nkeys, ops_per_thread, client_threads,
                               value_size, flush_ns, drain_ns, backup_flush_ns,
                               backup_drain_ns));
      const SweepPoint& p = points.back();
      std::fprintf(stderr,
                   "  %.0f ops/s  (%.2fs, %llu cross-shard commits, "
                   "committed %llu..%llu per shard, imbalance %.2f, "
                   "max queue depth %llu)\n",
                   p.ops_per_sec, p.elapsed_s,
                   static_cast<unsigned long long>(p.cross_shard_commits),
                   static_cast<unsigned long long>(p.committed_min),
                   static_cast<unsigned long long>(p.committed_max), p.imbalance,
                   static_cast<unsigned long long>(p.max_queue_depth));
    }
  }

  auto find = [&](int shards, int cross) -> const SweepPoint* {
    for (const SweepPoint& p : points) {
      if (p.shards == shards && p.cross_pct == cross) {
        return &p;
      }
    }
    return nullptr;
  };
  const SweepPoint* s1c0 = find(1, 0);
  const SweepPoint* s4c0 = find(4, 0);
  const SweepPoint* s4c20 = find(4, 20);
  const double speedup =
      s1c0 != nullptr && s4c0 != nullptr && s1c0->ops_per_sec > 0
          ? s4c0->ops_per_sec / s1c0->ops_per_sec
          : 0;
  const double penalty =
      s4c0 != nullptr && s4c20 != nullptr && s4c20->ops_per_sec > 0
          ? s4c0->ops_per_sec / s4c20->ops_per_sec
          : 0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sharding\",\n");
  std::fprintf(f, "  \"workload\": \"ycsb-a\",\n");
  std::fprintf(f, "  \"engine\": \"kamino-simple\",\n");
  std::fprintf(f, "  \"keys\": %llu,\n", static_cast<unsigned long long>(nkeys));
  std::fprintf(f, "  \"ops_per_client\": %llu,\n",
               static_cast<unsigned long long>(ops_per_thread));
  std::fprintf(f, "  \"client_threads\": %d,\n", client_threads);
  std::fprintf(f, "  \"value_size\": %llu,\n", static_cast<unsigned long long>(value_size));
  std::fprintf(f, "  \"flush_ns\": %u,\n", flush_ns);
  std::fprintf(f, "  \"drain_ns\": %u,\n", drain_ns);
  std::fprintf(f, "  \"backup_flush_ns\": %u,\n", backup_flush_ns);
  std::fprintf(f, "  \"backup_drain_ns\": %u,\n", backup_drain_ns);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"cross_shard_pct\": %d, \"ops_per_sec\": %.1f, "
                 "\"ops\": %llu, \"elapsed_s\": %.3f, \"cross_shard_commits\": %llu, "
                 "\"committed_min\": %llu, \"committed_max\": %llu, "
                 "\"imbalance\": %.3f, \"max_queue_depth\": %llu}%s\n",
                 p.shards, p.cross_pct, p.ops_per_sec,
                 static_cast<unsigned long long>(p.ops), p.elapsed_s,
                 static_cast<unsigned long long>(p.cross_shard_commits),
                 static_cast<unsigned long long>(p.committed_min),
                 static_cast<unsigned long long>(p.committed_max), p.imbalance,
                 static_cast<unsigned long long>(p.max_queue_depth),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_1_to_4_shards\": %.2f,\n", speedup);
  std::fprintf(f, "  \"cross_shard_penalty_20pct\": %.2f\n", penalty);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (speedup 1->4 shards: %.2fx, 20%% cross penalty: %.2fx)\n",
               out_path, speedup, penalty);
  return 0;
}
