// Recovery pipeline benchmark (online-recovery ISSUE acceptance).
//
// Measures restart-to-first-op and restart-to-full-throughput across three
// sweeps, for kamino-simple (full mirror, optionally reconciled) and
// kamino-dynamic (persistent partial backup, nothing to reconcile):
//
//   heap:    heap size x {offline, online}. Offline recovery pays the whole
//            backup reconcile sweep before Open() returns, so restart grows
//            with allocated bytes; online recovery opens right after replay
//            and first-op cost is bounded by one dirty chunk — roughly flat
//            in heap size. That flatness is the acceptance gate.
//   workers: parallel log replay 1 -> 4 workers over a large dirty set. The
//            backup pool's injected drain latency *sleeps*, so concurrent
//            replay workers overlap their persistence stalls exactly like
//            the applier shards do; the replay-time speedup is the gate.
//   dirty:   committed-but-unapplied transaction count, online. Shows
//            first-op tracking the dirty set, not the heap.
//
// All latency is injected (sleeping) on the backup pool only, so the numbers
// are mostly machine-independent and comparable against the committed
// baseline. Emits BENCH_recovery.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/heap/heap.h"
#include "src/nvm/pool.h"
#include "src/txn/backup_store.h"
#include "src/txn/kamino_engine.h"
#include "src/txn/tx_manager.h"

namespace {

using kamino::Status;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

struct Config {
  const char* engine = "kamino-simple";
  const char* sweep = "heap";
  uint64_t heap_mb = 64;
  uint64_t dirty_txs = 32;
  int workers = 2;
  bool online = false;
  bool reconcile = false;
};

struct Point {
  Config cfg;
  double restart_to_first_op_ms = 0;
  double restart_to_full_ms = 0;
  double replay_ms = 0;
  uint64_t loaded_objects = 0;
  uint64_t dirty_chunks = 0;
  double reconciled_mb = 0;
  uint64_t fence_waits = 0;
  uint64_t ondemand_reconciles = 0;
};

// Crash-sim pools that outlive heap/manager teardown, so the run can
// power-cycle the machine and time the restart (the tests' CrashableSystem,
// minus the gtest dependency, plus bench-sized log options).
struct Sys {
  std::unique_ptr<kamino::nvm::Pool> main_pool;
  std::unique_ptr<kamino::nvm::Pool> backup_pool;
  std::unique_ptr<kamino::heap::Heap> heap;
  std::unique_ptr<kamino::txn::TxManager> mgr;
  kamino::txn::TxManagerOptions options;
};

constexpr uint64_t kObjectSize = 4096;
constexpr double kFill = 0.25;  // Fraction of the allocator region loaded.

Sys MakeSys(const Config& cfg) {
  Sys sys;
  kamino::nvm::PoolOptions popts;
  popts.size = cfg.heap_mb << 20;
  popts.crash_sim = true;
  sys.main_pool = std::move(kamino::nvm::Pool::Create(popts).value());

  const bool dynamic = std::strcmp(cfg.engine, "kamino-dynamic") == 0;
  sys.options.engine = dynamic ? kamino::txn::EngineType::kKaminoDynamic
                               : kamino::txn::EngineType::kKaminoSimple;
  sys.options.alpha = 0.25;
  sys.options.lock.timeout_ms = 30'000;
  // Enough slots to freeze the largest dirty set in the applier queue.
  sys.options.log.num_slots = 512;
  sys.options.log.slot_size = 8 * 1024;
  sys.options.log.max_records = 32;

  sys.heap = std::move(kamino::heap::Heap::CreateOn(sys.main_pool.get(), 8ull << 20).value());

  kamino::nvm::PoolOptions bopts;
  bopts.crash_sim = true;
  if (dynamic) {
    const uint64_t budget = static_cast<uint64_t>(
        0.25 * static_cast<double>(sys.heap->allocator()->stats().capacity));
    bopts.size = kamino::txn::DynamicBackupStore::RequiredPoolSize(budget, 1 << 14);
    sys.options.dynamic_lookup_buckets = 1 << 14;
  } else {
    bopts.size = popts.size;
  }
  sys.backup_pool = std::move(kamino::nvm::Pool::Create(bopts).value());
  sys.options.external_backup_pool = sys.backup_pool.get();

  sys.mgr = std::move(kamino::txn::TxManager::Create(sys.heap.get(), sys.options).value());
  return sys;
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

Point RunOnce(const Config& cfg, uint32_t backup_flush_ns, uint32_t backup_drain_ns) {
  Sys sys = MakeSys(cfg);

  // Load objects to kFill of the allocator region, full speed (no latency).
  const uint64_t capacity = sys.heap->allocator()->stats().capacity;
  const uint64_t num_objects =
      static_cast<uint64_t>(kFill * static_cast<double>(capacity)) / kObjectSize;
  std::vector<uint64_t> offs;
  offs.reserve(num_objects);
  for (uint64_t done = 0; done < num_objects;) {
    const uint64_t batch = std::min<uint64_t>(8, num_objects - done);
    Check(sys.mgr->Run([&](kamino::txn::Tx& tx) -> Status {
            for (uint64_t i = 0; i < batch; ++i) {
              kamino::Result<uint64_t> off = tx.Alloc(kObjectSize);
              if (!off.ok()) {
                return off.status();
              }
              offs.push_back(*off);
            }
            return Status::Ok();
          }),
          "load");
    done += batch;
  }
  sys.mgr->WaitIdle();

  // Freeze the applier and stage the dirty set: committed-but-unapplied
  // overwrites of distinct objects (disjoint write sets, like any snapshot of
  // in-flight commits at crash time).
  static_cast<kamino::txn::KaminoEngine*>(sys.mgr->engine())->PauseApplier(true);
  const uint64_t dirty = std::min<uint64_t>(cfg.dirty_txs, offs.size());
  for (uint64_t i = 0; i < dirty; ++i) {
    Check(sys.mgr->Run([&](kamino::txn::Tx& tx) -> Status {
            kamino::Result<void*> p = tx.OpenWrite(offs[i], kObjectSize);
            if (!p.ok()) {
              return p.status();
            }
            std::memset(*p, 0x5a, kObjectSize);
            return Status::Ok();
          }),
          "dirty stage");
  }

  // Machine dies. From here on the backup pool charges realistic (sleeping,
  // overlappable) persistence latency — recovery pays it, the load did not.
  sys.mgr.reset();
  sys.heap.reset();
  Check(sys.main_pool->Crash(kamino::nvm::CrashMode::kDropUnflushed), "main crash");
  Check(sys.backup_pool->Crash(kamino::nvm::CrashMode::kDropUnflushed), "backup crash");
  sys.backup_pool->set_latency(backup_flush_ns, backup_drain_ns, /*sleep=*/true);

  sys.options.recovery.workers = cfg.workers;
  sys.options.recovery.online = cfg.online;
  sys.options.recovery.reconcile_backup = cfg.reconcile;
  sys.options.recovery.reconcile_workers = 2;

  // Restart: attach + recover + one write on an object outside the dirty
  // set (its chunk is still dirty under reconcile — the fence pays for
  // exactly one chunk, not the heap).
  const uint64_t probe = offs[offs.size() / 2];
  const uint64_t t0 = NowNs();
  sys.heap = std::move(kamino::heap::Heap::Attach(sys.main_pool.get()).value());
  sys.mgr = std::move(kamino::txn::TxManager::Open(sys.heap.get(), sys.options).value());
  Check(sys.mgr->Run([&](kamino::txn::Tx& tx) -> Status {
          kamino::Result<void*> p = tx.OpenWrite(probe, kObjectSize);
          if (!p.ok()) {
            return p.status();
          }
          std::memset(*p, 0x7e, kObjectSize);
          return Status::Ok();
        }),
        "first op");
  const uint64_t t_first = NowNs();
  sys.mgr->WaitForRecovery();
  sys.mgr->WaitIdle();
  const uint64_t t_full = NowNs();

  const kamino::txn::EngineStats stats = sys.mgr->engine()->stats();
  Point p;
  p.cfg = cfg;
  p.restart_to_first_op_ms = static_cast<double>(t_first - t0) / 1e6;
  p.restart_to_full_ms = static_cast<double>(t_full - t0) / 1e6;
  p.replay_ms = static_cast<double>(stats.recovery_replay_ns) / 1e6;
  p.loaded_objects = offs.size();
  p.dirty_chunks = stats.recovery_dirty_chunks;
  p.reconciled_mb = static_cast<double>(stats.recovery_reconciled_bytes) / (1 << 20);
  p.fence_waits = stats.recovery_fence_waits;
  p.ondemand_reconciles = stats.recovery_ondemand_reconciles;
  return p;
}

}  // namespace

int main() {
  const uint32_t backup_flush_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_BACKUP_FLUSH_NS", 200));
  const uint32_t backup_drain_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_BACKUP_DRAIN_NS", 200'000));
  const char* out_path = std::getenv("KAMINO_BENCH_JSON");
  if (out_path == nullptr) {
    out_path = "BENCH_recovery.json";
  }

  std::vector<Config> configs;
  // Sweep 1: heap size x mode, both engines (reconcile only has meaning for
  // the full mirror).
  for (const char* engine : {"kamino-simple", "kamino-dynamic"}) {
    const bool simple = std::strcmp(engine, "kamino-simple") == 0;
    for (uint64_t heap_mb : {32ull, 64ull, 128ull}) {
      for (bool online : {false, true}) {
        Config c;
        c.engine = engine;
        c.sweep = "heap";
        c.heap_mb = heap_mb;
        c.online = online;
        c.reconcile = simple;
        configs.push_back(c);
      }
    }
  }
  // Sweep 2: replay workers over a large dirty set, offline, no reconcile —
  // isolates parallel log replay.
  for (int workers : {1, 2, 4}) {
    Config c;
    c.sweep = "workers";
    c.dirty_txs = 256;
    c.workers = workers;
    configs.push_back(c);
  }
  // Sweep 3: dirty-set size, online + reconcile.
  for (uint64_t dirty : {16ull, 64ull, 256ull}) {
    Config c;
    c.sweep = "dirty";
    c.dirty_txs = dirty;
    c.online = true;
    c.reconcile = true;
    configs.push_back(c);
  }

  std::vector<Point> points;
  for (const Config& cfg : configs) {
    std::fprintf(stderr, "%s %s heap=%lluMB dirty=%llu workers=%d %s%s ...\n", cfg.sweep,
                 cfg.engine, static_cast<unsigned long long>(cfg.heap_mb),
                 static_cast<unsigned long long>(cfg.dirty_txs), cfg.workers,
                 cfg.online ? "online" : "offline", cfg.reconcile ? "+reconcile" : "");
    points.push_back(RunOnce(cfg, backup_flush_ns, backup_drain_ns));
    const Point& p = points.back();
    std::fprintf(stderr,
                 "  first-op %.2fms  full %.2fms  replay %.2fms  "
                 "(%llu objects, %llu dirty chunks, %.1fMB reconciled, "
                 "%llu fence waits, %llu on-demand)\n",
                 p.restart_to_first_op_ms, p.restart_to_full_ms, p.replay_ms,
                 static_cast<unsigned long long>(p.loaded_objects),
                 static_cast<unsigned long long>(p.dirty_chunks), p.reconciled_mb,
                 static_cast<unsigned long long>(p.fence_waits),
                 static_cast<unsigned long long>(p.ondemand_reconciles));
  }

  // Acceptance summary.
  double replay_1 = 0, replay_4 = 0;
  double online_first_min = 0, online_first_max = 0;
  double offline_first_min = 0, offline_first_max = 0;
  for (const Point& p : points) {
    if (std::strcmp(p.cfg.sweep, "workers") == 0) {
      if (p.cfg.workers == 1) {
        replay_1 = p.replay_ms;
      }
      if (p.cfg.workers == 4) {
        replay_4 = p.replay_ms;
      }
    }
    if (std::strcmp(p.cfg.sweep, "heap") == 0 &&
        std::strcmp(p.cfg.engine, "kamino-simple") == 0) {
      double& mn = p.cfg.online ? online_first_min : offline_first_min;
      double& mx = p.cfg.online ? online_first_max : offline_first_max;
      if (mn == 0 || p.restart_to_first_op_ms < mn) {
        mn = p.restart_to_first_op_ms;
      }
      if (p.restart_to_first_op_ms > mx) {
        mx = p.restart_to_first_op_ms;
      }
    }
  }
  const double replay_speedup = replay_4 > 0 ? replay_1 / replay_4 : 0;
  const double online_spread = online_first_min > 0 ? online_first_max / online_first_min : 0;
  const double offline_spread =
      offline_first_min > 0 ? offline_first_max / offline_first_min : 0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"recovery\",\n");
  std::fprintf(f, "  \"object_size\": %llu,\n", static_cast<unsigned long long>(kObjectSize));
  std::fprintf(f, "  \"fill\": %.2f,\n", kFill);
  std::fprintf(f, "  \"backup_flush_ns\": %u,\n", backup_flush_ns);
  std::fprintf(f, "  \"backup_drain_ns\": %u,\n", backup_drain_ns);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"sweep\": \"%s\", \"engine\": \"%s\", \"mode\": \"%s\", "
                 "\"heap_mb\": %llu, \"dirty_txs\": %llu, \"workers\": %d, "
                 "\"reconcile\": %s, \"restart_to_first_op_ms\": %.3f, "
                 "\"restart_to_full_ms\": %.3f, \"replay_ms\": %.3f, "
                 "\"loaded_objects\": %llu, \"dirty_chunks\": %llu, "
                 "\"reconciled_mb\": %.1f, \"fence_waits\": %llu, "
                 "\"ondemand_reconciles\": %llu}%s\n",
                 p.cfg.sweep, p.cfg.engine, p.cfg.online ? "online" : "offline",
                 static_cast<unsigned long long>(p.cfg.heap_mb),
                 static_cast<unsigned long long>(p.cfg.dirty_txs), p.cfg.workers,
                 p.cfg.reconcile ? "true" : "false", p.restart_to_first_op_ms,
                 p.restart_to_full_ms, p.replay_ms,
                 static_cast<unsigned long long>(p.loaded_objects),
                 static_cast<unsigned long long>(p.dirty_chunks), p.reconciled_mb,
                 static_cast<unsigned long long>(p.fence_waits),
                 static_cast<unsigned long long>(p.ondemand_reconciles),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary\": {\n");
  std::fprintf(f, "    \"replay_speedup_1_to_4\": %.2f,\n", replay_speedup);
  std::fprintf(f, "    \"online_first_op_spread\": %.2f,\n", online_spread);
  std::fprintf(f, "    \"offline_first_op_spread\": %.2f\n", offline_spread);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %s (replay speedup 1->4: %.2fx, online first-op spread %.2fx, "
               "offline %.2fx)\n",
               out_path, replay_speedup, online_spread, offline_spread);
  return 0;
}
