// Table 1 — "Comparison between different Kamino-Tx schemes and traditional
// chain replication for transactions": #servers, storage requirement, and
// dependent vs independent transaction latency, with f = 2.
//
//   Scheme                       #servers  storage               dep. latency        indep. latency
//   Traditional Chain            f+1       (f+1) x dataSize      (f+1)(lc+ln+lt)     (f+1)(lc+ln+lt)
//   Kamino-Tx-Simple Chain       f+1*      2(f+1) x dataSize     (f+1)(ln+lt)        (f+1)(ln+lt)
//   Kamino-Tx-Dynamic Chain      f+1*      (1+a)(f+1) x dataSize (f+1)(ln+lt)        (f+1)(ln+lt)
//   Kamino-Tx-Amortized Chain    f+2       (f+2+a) x dataSize    2(f+1)(ln+lt)       (f+1)(ln+lt)
//
// (*naive per-replica backups; the implemented Kamino-Tx-Chain is the
// amortized scheme.) This harness builds the traditional and amortized
// chains, measures their storage footprint empirically, and measures
// independent (distinct keys) vs dependent (same key, back-to-back from two
// clients) write latency.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/chain/chain.h"

namespace kamino::bench {
namespace {

struct Scheme {
  const char* label;
  bool kamino;
  double head_alpha;
};

const Scheme kSchemes[] = {
    {"TraditionalChain", false, 1.0},
    {"KaminoTxChain_FullHead", true, 1.0},
    {"KaminoTxChain_DynamicHead_a30", true, 0.3},
};

void BM_Table1(::benchmark::State& state, const Scheme& scheme, bool dependent) {
  const uint64_t nkeys = 500;
  const uint64_t ops = EnvOr("KAMINO_BENCH_CHAIN_OPS", 1'000);
  chain::ChainOptions copts;
  copts.kamino = scheme.kamino;
  copts.head_alpha = scheme.head_alpha;
  copts.f = 2;
  copts.pool_size = 64ull << 20;
  copts.one_way_latency_us = 10;
  copts.flush_latency_ns = DefaultFlushNs();
  auto ch = std::move(chain::Chain::Create(copts).value());
  const std::string value = workload::YcsbValue(7, kValueSize);
  for (uint64_t k = 0; k < nkeys; ++k) {
    if (!ch->Upsert(k, value).ok()) {
      state.SkipWithError("load failed");
      return;
    }
  }
  for (auto _ : state) {
    stats::LatencyHistogram hist;
    // Two clients: dependent mode hammers one key (the second write must
    // wait out the first's chain commit + lock release), independent mode
    // uses disjoint keys.
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
      clients.emplace_back([&, t] {
        Xoshiro256 rng(5 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < ops / 2; ++i) {
          const uint64_t key = dependent ? 0 : 1 + rng.NextBounded(nkeys - 1);
          const uint64_t start = stats::NowNanos();
          (void)ch->Upsert(key, value);
          hist.Record(stats::NowNanos() - start);
        }
      });
    }
    for (auto& c : clients) {
      c.join();
    }
    state.counters["servers"] = static_cast<double>(ch->num_replicas());
    state.counters["storage_MB"] =
        static_cast<double>(ch->total_nvm_bytes()) / (1 << 20);
    state.counters["storage_over_dataSize"] =
        static_cast<double>(ch->total_nvm_bytes()) / static_cast<double>(copts.pool_size);
    state.counters["mean_us"] = hist.MeanNs() / 1000.0;
    state.counters["p99_us"] = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  }
}

void RegisterAll() {
  for (const Scheme& scheme : kSchemes) {
    for (bool dependent : {false, true}) {
      std::string name = std::string("Table1/") + scheme.label + "/" +
                         (dependent ? "DependentTxns" : "IndependentTxns");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [&scheme, dependent](::benchmark::State& s) {
                                       BM_Table1(s, scheme, dependent);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
