// Shared knobs for the chain benches (fig17/fig18): an optional
// lossy-network mode driven by environment variables, and the robustness
// counter report. Off by default so the clean paper figures are unchanged.
//
//   KAMINO_BENCH_CHAIN_DROP_PCT      integer percent of messages dropped
//   KAMINO_BENCH_CHAIN_DUP_PCT       integer percent duplicated
//   KAMINO_BENCH_CHAIN_REORDER_PCT   integer percent given extra delay
//   KAMINO_BENCH_CHAIN_REORDER_WINDOW_US  reorder delay window (default 1000)
//   KAMINO_BENCH_CHAIN_FAULT_SEED    PRNG seed for the fault schedule

#ifndef BENCH_CHAIN_BENCH_UTIL_H_
#define BENCH_CHAIN_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/chain/chain.h"

namespace kamino::bench {

inline net::LinkFaults ChainFaultsFromEnv() {
  net::LinkFaults faults;
  faults.drop_probability = static_cast<double>(EnvOr("KAMINO_BENCH_CHAIN_DROP_PCT", 0)) / 100.0;
  faults.duplicate_probability =
      static_cast<double>(EnvOr("KAMINO_BENCH_CHAIN_DUP_PCT", 0)) / 100.0;
  faults.reorder_probability =
      static_cast<double>(EnvOr("KAMINO_BENCH_CHAIN_REORDER_PCT", 0)) / 100.0;
  faults.reorder_window_us =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_CHAIN_REORDER_WINDOW_US", 1'000));
  return faults;
}

// Installs the env-configured fault model on every link (no-op when all
// probabilities are zero).
inline void ApplyChainFaultsFromEnv(chain::Chain* ch) {
  const net::LinkFaults faults = ChainFaultsFromEnv();
  if (faults.any()) {
    ch->network()->SetDefaultFaults(faults);
  }
}

// Robustness counters: zero on a clean network; under the lossy mode they
// show how much recovery machinery the reported numbers had to absorb.
inline void ReportChainNetworkCounters(::benchmark::State& state, chain::Chain* ch) {
  const chain::ChainNetworkStats ns = ch->NetworkStats();
  state.counters["net_dropped"] = static_cast<double>(ns.net.dropped);
  state.counters["net_duplicated"] = static_cast<double>(ns.net.duplicated);
  state.counters["net_reordered"] = static_cast<double>(ns.net.reordered);
  state.counters["retransmits"] = static_cast<double>(ns.retransmits);
  state.counters["dedup_dropped"] = static_cast<double>(ns.dedup_dropped);
  state.counters["reorder_buffered"] = static_cast<double>(ns.reorder_buffered);
}

}  // namespace kamino::bench

#endif  // BENCH_CHAIN_BENCH_UTIL_H_
