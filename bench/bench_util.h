// Shared benchmark scaffolding.
//
// Every figure-reproduction binary builds the same stack the paper measured:
// a KV store over the persistent B+Tree over one of the atomicity engines,
// loaded with N records of `value_size` bytes, then driven by YCSB client
// threads. Benchmarks register with google-benchmark, run the whole workload
// once per iteration (manual timing) and report throughput/latency as
// counters — the counter series across benchmarks IS the paper's figure.
//
// Scale note: the paper used 10M 1KB records on 16-core Azure A9 VMs; these
// defaults are sized for a small CI host (see EXPERIMENTS.md). Override with
// KAMINO_BENCH_KEYS / KAMINO_BENCH_OPS when running on bigger metal.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/stats/histogram.h"
#include "src/workload/ycsb.h"

namespace kamino::bench {

inline uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

inline uint64_t DefaultKeys() { return EnvOr("KAMINO_BENCH_KEYS", 20'000); }
inline uint64_t DefaultOps() { return EnvOr("KAMINO_BENCH_OPS", 30'000); }
// Emulated NVM write-back cost per cache line. 0 models battery-backed DRAM
// (where copying is nearly free and the engines converge); ~150 ns models
// NVDIMM-class clwb cost, which is what makes undo/CoW's critical-path
// copies expensive — the effect the paper measures. See EXPERIMENTS.md.
inline uint32_t DefaultFlushNs() {
  return static_cast<uint32_t>(EnvOr("KAMINO_BENCH_FLUSH_NS", 150));
}
inline constexpr size_t kValueSize = 1024;  // The paper's 1 KB records.

// A full single-node stack: heap + engine + KV store.
struct KvBundle {
  std::unique_ptr<heap::Heap> heap;
  std::unique_ptr<txn::TxManager> mgr;
  std::unique_ptr<kv::KvStore> store;

  static std::unique_ptr<KvBundle> Make(txn::EngineType engine, uint64_t nkeys,
                                        size_t value_size = kValueSize, double alpha = 0.2,
                                        uint32_t flush_latency_ns = DefaultFlushNs()) {
    auto b = std::make_unique<KvBundle>();
    heap::HeapOptions hopts;
    // Blobs round up to the next size class (1 KB payload -> 2 KB class);
    // triple the raw data size plus tree nodes and slack.
    hopts.pool_size = nkeys * value_size * 3 + (96ull << 20);
    hopts.flush_latency_ns = flush_latency_ns;
    hopts.log_region_size = 16ull << 20;
    b->heap = std::move(heap::Heap::Create(hopts).value());

    txn::TxManagerOptions mopts;
    mopts.engine = engine;
    mopts.alpha = alpha;
    mopts.lock.timeout_ms = 10'000;
    mopts.backup_flush_latency_ns = flush_latency_ns;
    b->mgr = std::move(txn::TxManager::Create(b->heap.get(), mopts).value());
    b->store = std::move(kv::KvStore::Create(b->mgr.get()).value());
    return b;
  }

  void Load(uint64_t nkeys, size_t value_size = kValueSize) {
    for (uint64_t k = 0; k < nkeys; ++k) {
      Status st = store->Upsert(k, workload::YcsbValue(k, value_size));
      if (!st.ok()) {
        std::fprintf(stderr, "load failed at %llu: %s\n",
                     static_cast<unsigned long long>(k), st.ToString().c_str());
        std::abort();
      }
    }
    mgr->WaitIdle();
  }
};

struct YcsbResult {
  double ops_per_sec = 0;
  double mean_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
  // Persistence work accounting (hardware-independent evidence of what sits
  // in the critical path): cache lines written back to the MAIN pool happen
  // on client threads (the critical path for every engine); backup-pool
  // lines are the Kamino applier's background work.
  double critical_path_lines_per_op = 0;
  double background_lines_per_op = 0;
  double dependent_block_us_per_op = 0;
  // Fence accounting (DESIGN.md §8): main-pool Flush/Drain calls per
  // committed transaction. Drains are the ordering points (SFENCE) the
  // commit critical path actually waits on; this is the number the
  // fence-elision work drives down.
  double main_flushes_per_txn = 0;
  double main_drains_per_txn = 0;
};

// Runs `ops_per_thread` YCSB requests on each of `threads` client threads.
inline YcsbResult RunYcsb(kv::KvStore* store, workload::YcsbWorkload workload,
                          int threads, uint64_t ops_per_thread, uint64_t nkeys,
                          size_t value_size = kValueSize) {
  std::atomic<uint64_t> key_count{nkeys};
  stats::LatencyHistogram hist;
  std::atomic<uint64_t> errors{0};

  const uint64_t start_ns = stats::NowNanos();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      workload::YcsbGenerator gen(workload, nkeys, &key_count,
                                  0x9E3779B9u + static_cast<uint64_t>(t));
      std::string value = workload::YcsbValue(static_cast<uint64_t>(t), value_size);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto req = gen.Next();
        const uint64_t op_start = stats::NowNanos();
        Status st;
        switch (req.op) {
          case workload::YcsbOp::kRead: {
            Result<std::string> r = store->Read(req.key);
            st = r.status();
            break;
          }
          case workload::YcsbOp::kUpdate:
            st = store->Update(req.key, value);
            break;
          case workload::YcsbOp::kInsert:
            st = store->Upsert(req.key, value);
            break;
          case workload::YcsbOp::kReadModifyWrite:
            st = store->ReadModifyWrite(req.key, [](std::string& v) {
              if (!v.empty()) {
                ++v[0];
              }
            });
            break;
        }
        hist.Record(stats::NowNanos() - op_start);
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const uint64_t elapsed_ns = stats::NowNanos() - start_ns;

  YcsbResult res;
  const double secs = static_cast<double>(elapsed_ns) / 1e9;
  res.ops_per_sec =
      secs > 0 ? static_cast<double>(ops_per_thread) * threads / secs : 0;
  res.mean_us = hist.MeanNs() / 1000.0;
  res.p99_us = static_cast<double>(hist.PercentileNs(99)) / 1000.0;
  res.errors = errors.load();
  return res;
}

inline void SetYcsbCounters(::benchmark::State& state, const YcsbResult& res) {
  state.counters["Kops_per_sec"] = res.ops_per_sec / 1000.0;
  state.counters["mean_us"] = res.mean_us;
  state.counters["p99_us"] = res.p99_us;
  state.counters["errors"] = static_cast<double>(res.errors);
  state.counters["cp_lines_per_op"] = res.critical_path_lines_per_op;
  state.counters["bg_lines_per_op"] = res.background_lines_per_op;
  state.counters["dep_block_us_per_op"] = res.dependent_block_us_per_op;
  state.counters["flushes_per_txn"] = res.main_flushes_per_txn;
  state.counters["drains_per_txn"] = res.main_drains_per_txn;
}

// RunYcsb plus persistence-work accounting around the run.
inline YcsbResult RunYcsbOnBundle(KvBundle* bundle, workload::YcsbWorkload workload,
                                  int threads, uint64_t ops_per_thread, uint64_t nkeys,
                                  size_t value_size = kValueSize) {
  bundle->mgr->WaitIdle();
  const nvm::PoolStats main_before = bundle->heap->pool()->stats();
  nvm::PoolStats backup_before;
  if (bundle->mgr->backup_pool() != nullptr) {
    backup_before = bundle->mgr->backup_pool()->stats();
  }
  const txn::LockStats locks_before = bundle->mgr->locks()->stats();
  const txn::EngineStats engine_before = bundle->mgr->engine()->stats();

  YcsbResult res =
      RunYcsb(bundle->store.get(), workload, threads, ops_per_thread, nkeys, value_size);

  bundle->mgr->WaitIdle();
  const double total_ops = static_cast<double>(ops_per_thread) * threads;
  const nvm::PoolStats main_after = bundle->heap->pool()->stats();
  res.critical_path_lines_per_op =
      static_cast<double>(main_after.lines_flushed - main_before.lines_flushed) / total_ops;
  if (bundle->mgr->backup_pool() != nullptr) {
    const nvm::PoolStats backup_after = bundle->mgr->backup_pool()->stats();
    res.background_lines_per_op =
        static_cast<double>(backup_after.lines_flushed - backup_before.lines_flushed) /
        total_ops;
  }
  const txn::LockStats locks_after = bundle->mgr->locks()->stats();
  res.dependent_block_us_per_op =
      static_cast<double>(locks_after.total_block_ns - locks_before.total_block_ns) / 1000.0 /
      total_ops;
  const txn::EngineStats engine_after = bundle->mgr->engine()->stats();
  const double txns =
      static_cast<double>(engine_after.committed - engine_before.committed);
  if (txns > 0) {
    res.main_flushes_per_txn =
        static_cast<double>(main_after.flush_calls - main_before.flush_calls) / txns;
    res.main_drains_per_txn =
        static_cast<double>(main_after.drain_calls - main_before.drain_calls) / txns;
  }
  return res;
}

inline const char* EngineLabel(txn::EngineType e) {
  switch (e) {
    case txn::EngineType::kKaminoSimple:
      return "KaminoTx";
    case txn::EngineType::kKaminoDynamic:
      return "KaminoTxDynamic";
    case txn::EngineType::kUndoLog:
      return "UndoLogging";
    case txn::EngineType::kCow:
      return "CopyOnWrite";
    case txn::EngineType::kRedoLog:
      return "RedoLogging";
    case txn::EngineType::kNoLogging:
      return "NoLogging";
    default:
      return "Unknown";
  }
}

}  // namespace kamino::bench

#endif  // BENCH_BENCH_UTIL_H_
