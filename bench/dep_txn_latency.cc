// §7.1 "Dependent transactions" — the paper's targeted experiment: "80%
// look-up operations and 20% insert operations ... all the insert operations
// are performed on the same key", comparing inserts spaced out *uniformly*
// against inserts performed in *bursts*. For undo-logging the spacing makes
// no difference; for Kamino-Tx bursts make each insert dependent on the
// previous one's backup sync (avg latency +8%, insert latency +30% in the
// paper).

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

struct DepResult {
  double mean_us = 0;
  double write_mean_us = 0;  // The same-key writes only.
};

DepResult RunDependent(kv::KvStore* store, uint64_t nkeys, uint64_t ops, bool burst) {
  constexpr uint64_t kHotKey = 0;
  stats::LatencyHistogram all;
  stats::LatencyHistogram writes;
  Xoshiro256 rng(99);
  const std::string value = workload::YcsbValue(1, kValueSize);

  // 20% writes overall. Uniform: every 5th op writes. Burst: every 50 ops,
  // 10 consecutive writes.
  uint64_t issued_writes = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    const bool do_write = burst ? (i % 50) < 10 : (i % 5) == 0;
    const uint64_t start = stats::NowNanos();
    if (do_write) {
      (void)store->Upsert(kHotKey, value);
      const uint64_t d = stats::NowNanos() - start;
      all.Record(d);
      writes.Record(d);
      ++issued_writes;
    } else {
      (void)store->Read(1 + rng.NextBounded(nkeys - 1));
      all.Record(stats::NowNanos() - start);
    }
  }
  DepResult res;
  res.mean_us = all.MeanNs() / 1000.0;
  res.write_mean_us = writes.MeanNs() / 1000.0;
  return res;
}

void BM_Dependent(::benchmark::State& state, txn::EngineType engine, bool burst) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  auto bundle = KvBundle::Make(engine, nkeys);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const DepResult res = RunDependent(bundle->store.get(), nkeys, ops, burst);
    state.counters["mean_us"] = res.mean_us;
    state.counters["insert_mean_us"] = res.write_mean_us;
  }
}

void RegisterAll() {
  for (txn::EngineType engine :
       {txn::EngineType::kKaminoSimple, txn::EngineType::kUndoLog}) {
    for (bool burst : {false, true}) {
      std::string name = std::string("DependentTxns/") + EngineLabel(engine) + "/" +
                         (burst ? "Bursty" : "Uniform");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [engine, burst](::benchmark::State& s) {
                                       BM_Dependent(s, engine, burst);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
