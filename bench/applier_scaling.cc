// Transaction Coordinator scaling sweep (ISSUE 2 acceptance benchmark).
//
// Measures commit-to-applied throughput of the sharded applier pipeline on
// YCSB-A over Kamino-Tx-Simple as the applier thread count grows. The
// backup pool injects a per-drain latency that *sleeps* instead of spinning
// (PoolOptions::sleep_latency), so concurrent appliers overlap their
// persistence stalls even on a single-core host — which is exactly what
// sharding buys: the bound is N overlapping drains, not one serial stream.
//
// Clients outrun the applier by construction (main-pool latency is zero),
// so the intent log's slot pool applies backpressure and end-to-end
// throughput is the applier pipeline's. Emits BENCH_applier_scaling.json.
//
// Not a google-benchmark binary: the sweep is the product, and we want the
// JSON schema stable for the acceptance check.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/heap/heap.h"
#include "src/kv/kv_store.h"
#include "src/stats/histogram.h"
#include "src/txn/tx_manager.h"
#include "src/workload/ycsb.h"

namespace {

using kamino::Status;
using kamino::StatusCode;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

struct SweepPoint {
  int applier_threads = 0;
  double commit_to_applied_ops_per_sec = 0;
  double elapsed_s = 0;
  uint64_t applied = 0;
  double backup_drains_per_txn = 0;
  uint64_t apply_batches = 0;
  uint64_t coalesced_ranges = 0;
  double apply_lag_p50_us = 0;
  double apply_lag_p99_us = 0;
  uint64_t max_queue_depth = 0;
  // Intent-log slot backpressure: how often clients blocked waiting for a
  // free slot, and for how long in total. With clients outrunning the
  // applier by construction, this is the visible face of the backpressure.
  uint64_t blocked_acquires = 0;
  double blocked_wait_ms = 0;
};

SweepPoint RunOnce(int applier_threads, uint64_t nkeys, uint64_t ops_per_thread,
                   int client_threads, uint64_t value_size, uint32_t backup_drain_ns) {
  kamino::heap::HeapOptions hopts;
  hopts.pool_size = nkeys * value_size * 3 + (96ull << 20);
  hopts.flush_latency_ns = 0;  // Keep the client-side critical path cheap.
  auto heap = std::move(kamino::heap::Heap::Create(hopts).value());

  kamino::txn::TxManagerOptions mopts;
  mopts.engine = kamino::txn::EngineType::kKaminoSimple;
  mopts.applier_threads = applier_threads;
  mopts.lock.timeout_ms = 30'000;
  mopts.backup_drain_latency_ns = backup_drain_ns;
  mopts.backup_sleep_latency = true;  // Overlappable stalls (see header note).
  auto mgr = std::move(kamino::txn::TxManager::Create(heap.get(), mopts).value());
  auto store = std::move(kamino::kv::KvStore::Create(mgr.get()).value());

  for (uint64_t k = 0; k < nkeys; ++k) {
    Status st = store->Upsert(k, kamino::workload::YcsbValue(k, value_size));
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  mgr->WaitIdle();

  const kamino::txn::EngineStats before = mgr->engine()->stats();
  const kamino::nvm::PoolStats backup_before = mgr->backup_pool()->stats();

  std::atomic<bool> running{true};
  std::atomic<uint64_t> max_depth{0};
  std::thread sampler([&] {
    while (running.load(std::memory_order_relaxed)) {
      const uint64_t d = mgr->engine()->stats().applier_queue_depth;
      uint64_t cur = max_depth.load(std::memory_order_relaxed);
      while (d > cur && !max_depth.compare_exchange_weak(cur, d)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const uint64_t start_ns = kamino::stats::NowNanos();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  std::atomic<uint64_t> key_count{nkeys};
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      kamino::workload::YcsbGenerator gen(kamino::workload::YcsbWorkload::kA, nkeys,
                                          &key_count, 0x243F6A88u + static_cast<uint64_t>(t));
      const std::string value =
          kamino::workload::YcsbValue(static_cast<uint64_t>(t), value_size);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto req = gen.Next();
        Status st;
        if (req.op == kamino::workload::YcsbOp::kRead) {
          st = store->Read(req.key).status();
        } else {
          st = store->Update(req.key, value);
        }
        if (!st.ok() && st.code() != StatusCode::kNotFound) {
          std::fprintf(stderr, "op failed: %s\n", st.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  // The run is over when every committed transaction is applied — the
  // number we are scaling is the pipeline's, not the clients'.
  mgr->WaitIdle();
  const uint64_t elapsed_ns = kamino::stats::NowNanos() - start_ns;
  running.store(false, std::memory_order_relaxed);
  sampler.join();

  const kamino::txn::EngineStats after = mgr->engine()->stats();
  const kamino::nvm::PoolStats backup_after = mgr->backup_pool()->stats();

  SweepPoint p;
  p.applier_threads = applier_threads;
  p.applied = after.applied - before.applied;
  p.elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  p.commit_to_applied_ops_per_sec =
      p.elapsed_s > 0 ? static_cast<double>(p.applied) / p.elapsed_s : 0;
  p.backup_drains_per_txn =
      p.applied > 0 ? static_cast<double>(backup_after.drain_calls - backup_before.drain_calls) /
                          static_cast<double>(p.applied)
                    : 0;
  p.apply_batches = after.apply_batches - before.apply_batches;
  p.coalesced_ranges = after.coalesced_ranges - before.coalesced_ranges;
  p.apply_lag_p50_us = static_cast<double>(after.apply_lag_p50_ns) / 1000.0;
  p.apply_lag_p99_us = static_cast<double>(after.apply_lag_p99_ns) / 1000.0;
  p.max_queue_depth = max_depth.load();
  p.blocked_acquires = after.log_blocked_acquires - before.log_blocked_acquires;
  p.blocked_wait_ms =
      static_cast<double>(after.log_blocked_wait_ns - before.log_blocked_wait_ns) / 1e6;
  return p;
}

}  // namespace

int main() {
  const uint64_t nkeys = EnvOr("KAMINO_BENCH_KEYS", 8192);
  const uint64_t ops_per_thread = EnvOr("KAMINO_BENCH_OPS", 2000);
  const int client_threads = static_cast<int>(EnvOr("KAMINO_BENCH_CLIENTS", 4));
  const uint64_t value_size = EnvOr("KAMINO_BENCH_VALUE", 1024);
  const uint32_t backup_drain_ns =
      static_cast<uint32_t>(EnvOr("KAMINO_BENCH_BACKUP_DRAIN_NS", 30'000));
  const char* out_path = std::getenv("KAMINO_BENCH_JSON");
  if (out_path == nullptr) {
    out_path = "BENCH_applier_scaling.json";
  }
  if (nkeys == 0 || ops_per_thread == 0 || client_threads <= 0 || value_size == 0) {
    std::fprintf(stderr,
                 "invalid knobs: KAMINO_BENCH_KEYS/OPS/CLIENTS/VALUE must be "
                 "positive integers (unparsable values read as 0)\n");
    return 2;
  }

  const int sweep[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (int n : sweep) {
    std::fprintf(stderr, "applier_threads=%d ...\n", n);
    points.push_back(
        RunOnce(n, nkeys, ops_per_thread, client_threads, value_size, backup_drain_ns));
    const SweepPoint& p = points.back();
    std::fprintf(stderr,
                 "  %.0f applied/s  (%llu applied, %.2fs, %.2f drains/txn, "
                 "lag p50 %.0fus p99 %.0fus, max depth %llu, "
                 "%llu blocked acquires / %.1fms)\n",
                 p.commit_to_applied_ops_per_sec,
                 static_cast<unsigned long long>(p.applied), p.elapsed_s,
                 p.backup_drains_per_txn, p.apply_lag_p50_us, p.apply_lag_p99_us,
                 static_cast<unsigned long long>(p.max_queue_depth),
                 static_cast<unsigned long long>(p.blocked_acquires), p.blocked_wait_ms);
  }

  double base = points.front().commit_to_applied_ops_per_sec;
  double at4 = 0;
  for (const SweepPoint& p : points) {
    if (p.applier_threads == 4) {
      at4 = p.commit_to_applied_ops_per_sec;
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"applier_scaling\",\n");
  std::fprintf(f, "  \"workload\": \"ycsb-a\",\n");
  std::fprintf(f, "  \"engine\": \"kamino-simple\",\n");
  std::fprintf(f, "  \"keys\": %llu,\n", static_cast<unsigned long long>(nkeys));
  std::fprintf(f, "  \"ops_per_client\": %llu,\n",
               static_cast<unsigned long long>(ops_per_thread));
  std::fprintf(f, "  \"client_threads\": %d,\n", client_threads);
  std::fprintf(f, "  \"value_size\": %llu,\n", static_cast<unsigned long long>(value_size));
  std::fprintf(f, "  \"backup_drain_ns\": %u,\n", backup_drain_ns);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"applier_threads\": %d, \"commit_to_applied_ops_per_sec\": %.1f, "
                 "\"applied\": %llu, \"elapsed_s\": %.3f, \"backup_drains_per_txn\": %.3f, "
                 "\"apply_batches\": %llu, \"coalesced_ranges\": %llu, "
                 "\"apply_lag_p50_us\": %.1f, \"apply_lag_p99_us\": %.1f, "
                 "\"max_queue_depth\": %llu, \"blocked_acquires\": %llu, "
                 "\"blocked_wait_ms\": %.2f}%s\n",
                 p.applier_threads, p.commit_to_applied_ops_per_sec,
                 static_cast<unsigned long long>(p.applied), p.elapsed_s,
                 p.backup_drains_per_txn, static_cast<unsigned long long>(p.apply_batches),
                 static_cast<unsigned long long>(p.coalesced_ranges), p.apply_lag_p50_us,
                 p.apply_lag_p99_us, static_cast<unsigned long long>(p.max_queue_depth),
                 static_cast<unsigned long long>(p.blocked_acquires), p.blocked_wait_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_1_to_4\": %.2f\n", base > 0 ? at4 / base : 0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (speedup 1->4: %.2fx)\n", out_path,
               base > 0 ? at4 / base : 0);
  return 0;
}
