// Figure 14 — "YCSB latency with full and partial backups": Kamino-Tx-Dynamic
// with α ∈ {10%..90%} vs Kamino-Tx-Simple (Full-Copy) on YCSB A, B, D, F.
// The paper shows Dynamic within a small factor of Full-Copy, converging as
// α grows (skewed access patterns keep the hot set resident).

#include "bench/bench_util.h"

namespace kamino::bench {
namespace {

void BM_Fig14(::benchmark::State& state, double alpha, workload::YcsbWorkload workload) {
  const uint64_t nkeys = DefaultKeys();
  const uint64_t ops = DefaultOps();
  const txn::EngineType engine =
      alpha >= 1.0 ? txn::EngineType::kKaminoSimple : txn::EngineType::kKaminoDynamic;
  auto bundle = KvBundle::Make(engine, nkeys, kValueSize, alpha);
  bundle->Load(nkeys);
  for (auto _ : state) {
    const YcsbResult res = RunYcsbOnBundle(bundle.get(), workload, /*threads=*/1, ops, nkeys);
    SetYcsbCounters(state, res);
  }
}

void RegisterAll() {
  for (workload::YcsbWorkload w :
       {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB, workload::YcsbWorkload::kD,
        workload::YcsbWorkload::kF}) {
    for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      std::string label =
          alpha >= 1.0 ? "FullCopy" : ("Dynamic-" + std::to_string(static_cast<int>(alpha * 100)));
      std::string name =
          std::string("Fig14/") + workload::YcsbWorkloadName(w) + "/" + label;
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [alpha, w](::benchmark::State& s) {
                                       BM_Fig14(s, alpha, w);
                                     })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace kamino::bench

int main(int argc, char** argv) {
  kamino::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
